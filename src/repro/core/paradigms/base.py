"""Episode scaffolding shared by all paradigm loops.

A paradigm loop owns the environment, the clock, the metrics collector,
and the per-agent module stacks; subclasses implement one macro step.
The scaffold handles ticking, horizon enforcement, and result finalizing,
so every paradigm measures success/steps/latency identically.
"""

from __future__ import annotations

import abc

from repro.core import hotpath
from repro.core.agent import EmbodiedAgent, PerceptionBundle
from repro.core.envknobs import bool_knob
from repro.core.bus import DeliveryBus
from repro.core.clock import SimClock, host_profiler
from repro.core.config import SystemConfig
from repro.core.errors import FaultKind
from repro.core.metrics import EpisodeResult, MetricsCollector
from repro.core.seeding import derive_seed, rng_for
from repro.core.types import Decision, Message, StepRecord, TaskSpec
from repro.envs import make_env
from repro.envs.base import ExecutionOutcome
from repro.llm.scheduler import InferenceScheduler, resolve_serve_mode


class ParadigmLoop(abc.ABC):
    """Base class of the four (plus hybrid) paradigm drivers."""

    def __init__(self, config: SystemConfig, task: TaskSpec, seed: int) -> None:
        self.config = config
        self.task = task
        self.seed = seed
        self.clock = SimClock()
        self.metrics = MetricsCollector(workload=config.name, horizon=task.horizon)
        self.env = make_env(task, rng_for(seed, "env", task.env_name))
        #: The episode's serving layer, shared by every agent's module
        #: stack so phase-concurrent requests can meet in one place.
        #: Mode: the config's Rec. 1 ``batching`` flag, else ``REPRO_SERVE``.
        self.scheduler = InferenceScheduler(
            self.clock, self.metrics, mode=resolve_serve_mode(config)
        )
        #: Perception–generation overlap (``REPRO_OVERLAP``): sense step
        #: t+1 while the engine still generates for step t, per the
        #: async-pipeline decomposition (arXiv 2509.09560).  Latency-only
        #: and meaningful only when the serving mode defers charges to a
        #: flush (the anchor is the flush's charge start); per-call
        #: serving ignores the knob, keeping the golden path untouched.
        self._overlap = bool_knob("REPRO_OVERLAP", False) and self.scheduler.defers
        agent_seed = derive_seed(seed, "agents")
        self.agents: list[EmbodiedAgent] = [
            EmbodiedAgent(
                name=name,
                config=config,
                env=self.env,
                clock=self.clock,
                metrics=self.metrics,
                seed=agent_seed,
                scheduler=self.scheduler,
            )
            for name in self.env.agents
        ]
        self._agents_by_name = {agent.name: agent for agent in self.agents}
        #: Step-batched delivery bus (hot path only); ``None`` selects the
        #: seed's per-delivery fan-out in :meth:`deliver_message`.
        self.bus: DeliveryBus | None = (
            DeliveryBus(self.agents, self._agents_by_name, self.metrics)
            if hotpath.enabled()
            else None
        )

    # ------------------------------------------------------------------ #
    # Episode driver
    # ------------------------------------------------------------------ #

    def run(self) -> EpisodeResult:
        profiler = host_profiler()
        if profiler is not None:
            # Start the probe's interval at the episode boundary so setup
            # work is not billed to the first step's first phase.
            profiler.sync()
        steps = 0
        for step in range(1, self.task.horizon + 1):
            self.env.tick()
            self.step(step)
            # Step-boundary serving flush: whatever the step's phases
            # left pending is dispatched before the next step — and
            # before finalize.  ``final`` marks it as the step boundary,
            # the only flush the continuous engine dispatches at.
            self.scheduler.flush(final=True)
            steps = step
            if self.env.is_success():
                break
        return self.metrics.finalize(
            clock=self.clock,
            success=self.env.is_success(),
            steps=steps,
            goal_progress=self.env.goal_progress(),
        )

    @abc.abstractmethod
    def step(self, step: int) -> None:
        """Execute one macro step for all agents."""

    # ------------------------------------------------------------------ #
    # Shared step fragments
    # ------------------------------------------------------------------ #

    def perceive_all(self, step: int) -> dict[str, PerceptionBundle]:
        """Run every agent's perceive concurrently (per-robot compute).

        Under ``REPRO_OVERLAP`` (with a deferring serving mode), sensing
        for this step is backdated to where the previous step's flush
        started charging generation latency: perception for step t+1
        runs concurrently with generation for step t, and the clock
        resumes at whichever finishes later.  The first step has no
        generation to overlap with and senses normally.
        """
        bundles: dict[str, PerceptionBundle] = {}
        scope = (
            self.clock.overlapped(self.scheduler.overlap_anchor)
            if self._overlap and step > 1
            else self.clock.parallel()
        )
        with scope:
            for agent in self.agents:
                agent.begin_step(step)
                bundles[agent.name] = agent.perceive(self.env)
        return bundles

    def deliver_message(
        self, message: Message, bundles: dict[str, PerceptionBundle]
    ) -> None:
        """Deliver ``message`` to every recipient.

        Reference path: the seed's inline fan-out — one
        ``receive_message`` (belief merge + memory write) per recipient,
        usefulness recorded immediately.  Hot path: the delivery is staged
        on the :class:`~repro.core.bus.DeliveryBus` and merged in batch at
        the phase's :meth:`flush_deliveries` point.  Recipient iteration
        order is ``message.recipients``, which every loop builds in agent
        order, matching the seed's receiver loops exactly.
        """
        if self.bus is not None:
            self.bus.stage(message, bundles)
            return
        novel_total = 0
        for name in message.recipients:
            receiver = self._agents_by_name[name]
            novel_total += receiver.receive_message(message, bundles[name])
        self.metrics.record_message(useful=novel_total > 0)

    def flush_deliveries(self, bundles: dict[str, PerceptionBundle]) -> None:
        """Apply staged deliveries (no-op on the reference path).

        Must run before anything reads delivery-derived beliefs or
        memory: the loops call it at the end of each dialogue/broadcast
        phase, ahead of planning and execution.
        """
        if self.bus is not None:
            self.bus.flush(bundles)

    def flush_inference(self) -> None:
        """Dispatch the phase's pending inference requests.

        The loops call it at their phase boundaries — the end of a
        dialogue round, the end of the planning fan-out — which is what
        defines "phase-concurrent" for batched serving: requests still
        pending at the flush shared a phase and dispatch as occupancy-
        aware batches.  No-op under per-call serving, where nothing is
        ever pending — and under continuous serving, whose engine only
        dispatches at the step-boundary flush so the whole step's
        requests meet in one arrival-ordered queue.
        """
        self.scheduler.flush()

    def execute_and_reflect(
        self,
        step: int,
        agent: EmbodiedAgent,
        bundle: PerceptionBundle,
        decision: Decision,
        allow_replan: bool = True,
    ) -> ExecutionOutcome:
        """Act, record, reflect, and optionally replan-once within the step."""
        outcome = agent.act(self.env, decision)
        record = StepRecord(
            step=step,
            agent=agent.name,
            subgoal=decision.subgoal,
            fault=decision.fault,
            primitive_count=outcome.primitive_count,
            execution_success=outcome.success,
            prompt_tokens=decision.prompt_tokens,
            output_tokens=decision.output_tokens,
        )
        report = agent.reflect(self.env, decision, outcome)
        agent.state.note_outcome(
            decision,
            wasted=self.is_wasteful(decision, outcome),
            corrected=report is not None and report.judged_failure,
        )
        if report is not None and report.judged_failure:
            record.reflected = True
            if allow_replan and report.should_replan:
                record.replanned = True
                self.metrics.replans += 1
                bundle.beliefs.forget(report.forget_subject, report.forget_relation)
                # The retry depends on this reflection's verdict: it must
                # not share a serving batch with the calls it follows.
                self.flush_inference()
                retry = agent.plan(
                    self.env,
                    bundle,
                    extra_blacklist=frozenset({decision.subgoal}),
                )
                retry_outcome = agent.act(self.env, retry)
                self.metrics.record_step(record)
                self.metrics.record_step(
                    StepRecord(
                        step=step,
                        agent=agent.name,
                        subgoal=retry.subgoal,
                        fault=retry.fault,
                        primitive_count=retry_outcome.primitive_count,
                        execution_success=retry_outcome.success,
                        prompt_tokens=retry.prompt_tokens,
                        output_tokens=retry.output_tokens,
                    )
                )
                return retry_outcome
        self.metrics.record_step(record)
        return outcome

    @staticmethod
    def is_wasteful(decision: Decision, outcome: ExecutionOutcome) -> bool:
        """A step that consumed time without advancing the task."""
        if not outcome.success:
            return True
        return decision.fault is not None and outcome.progress_delta <= 0.0

    @staticmethod
    def fault_of(decision: Decision) -> FaultKind | None:
        return decision.fault
