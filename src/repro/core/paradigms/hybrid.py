"""Hybrid multi-agent paradigm (HMAS: central proposal + local feedback).

HMAS combines the two multi-agent styles: a central agent primes the step
with an initial joint plan, each worker sends one short LLM-generated
feedback message, and the central planner refines the plan in a second
call that benefits from the feedback (a small quality bonus).  Cost sits
between centralized (2 central calls instead of 1) and decentralized
(n short feedback calls instead of n full dialogue rounds).
"""

from __future__ import annotations

from repro.core.clock import ModuleName
from repro.core.paradigms.centralized import CentralizedLoop, filter_assigned
from repro.core.types import Decision
from repro.llm.behavior import DecisionRequest
from repro.llm.prompt import PromptBuilder
from repro.llm.requests import InferenceRequest
from repro.llm.simulated import OUTPUT_TOKENS

#: Joint-plan quality multiplier after a local feedback round: workers
#: flag infeasibilities the central planner cannot see, recovering part of
#: the coordination penalty.
FEEDBACK_QUALITY_BONUS = 1.08


class HybridLoop(CentralizedLoop):
    """HMAS: initial central plan → worker feedback → refined central plan."""

    def step(self, step: int) -> None:
        bundles = self.perceive_all(step)
        central_bundle = self._aggregate_feedback(bundles)
        candidates_by_agent = {
            agent.name: self.env.candidates(agent.name, central_bundle.beliefs)
            for agent in self.agents
        }
        # Initial proposal primes the dialogue (its decisions are discarded
        # after feedback, but its latency and tokens are fully paid).
        self._joint_plan(step, central_bundle, candidates_by_agent, sample_decisions=False)
        feedback_received = self._feedback_round(step, bundles)
        decisions = self._refined_plan(
            step, central_bundle, candidates_by_agent, feedback_received
        )
        self._broadcast_instructions(step, decisions, bundles)
        for agent in self.agents:
            decision = decisions[agent.name]
            if agent is self.central:
                self.execute_and_reflect(step, agent, central_bundle, decision)
            else:
                outcome = agent.act(self.env, decision)
                self._record_worker(step, agent, decision, outcome)

    def _feedback_round(self, step: int, bundles) -> bool:
        """Each worker sends one short feedback message to the centre.

        Returns whether any feedback arrived (the refinement bonus only
        applies when it did — with communication ablated, the second plan
        has nothing extra to work from).
        """
        any_feedback = False
        for agent in self.agents:
            if agent is self.central or agent.comm is None:
                continue
            bundle = bundles[agent.name]
            message = agent.comm.compose(
                step=step,
                recipients=(self.central.name,),
                known_facts=list(bundle.current_facts),
                intent=agent.state.last_intent,
                dialogue=bundle.dialogue,
            )
            if message is None:
                continue
            self.deliver_message(message, bundles)
            any_feedback = True
        # The centre's refined plan follows immediately; merge its staged
        # feedback before that second call reads anything belief-derived.
        self.flush_deliveries(bundles)
        # The workers' feedback composes are the phase-concurrent unit:
        # under batched serving they dispatch here as one batch.
        self.flush_inference()
        return any_feedback

    def _refined_plan(
        self, step: int, central_bundle, candidates_by_agent, feedback_received: bool = True
    ) -> dict[str, Decision]:
        """Second central call, boosted by the feedback it just received."""
        n_agents = len(self.agents)
        builder = PromptBuilder(
            system_text=(
                "Refine the joint plan considering the feedback each robot "
                "just provided about feasibility and conflicts."
            ),
            task_text=self.central.planner.task_text,
        )
        builder.observation(central_bundle.observation)
        builder.dialogue(central_bundle.dialogue, window_key=self.central.name)
        for name, candidates in candidates_by_agent.items():
            builder.candidates(candidates)
            builder.static_extra("agent_header", f"Options above are for {name}.")
        prompt = builder.build()
        output_tokens = OUTPUT_TOKENS["plan"] + 45 * (n_agents - 1)
        llm = self.central.planner_llm
        self.scheduler.submit(
            llm,
            InferenceRequest(
                kind="completion",
                purpose="plan",
                prompt=prompt,
                module=ModuleName.PLANNING,
                phase="refine_plan",
                agent=self.central.name,
                step=step,
                output_tokens=output_tokens,
            ),
        )
        decisions: dict[str, Decision] = {}
        blacklist = self.central.state.blacklisted(step)
        bonus = FEEDBACK_QUALITY_BONUS if feedback_received else 1.0
        assigned: set[tuple[str, str]] = set()
        for agent in self.agents:
            request = DecisionRequest(
                candidates=filter_assigned(candidates_by_agent[agent.name], assigned),
                difficulty=self.env.task.difficulty,
                n_joint=n_agents,
                blacklist=blacklist,
                quality_bonus=bonus,
            )
            outcome = llm.kernel.decide(request, prompt.tokens, self.central.context.rng)
            decision = Decision(
                subgoal=outcome.candidate.subgoal,
                fault=outcome.fault,
                prompt_tokens=0,
                output_tokens=0,
                latency=0.0,
            )
            decision = agent.state.maybe_repeat_fault(decision, self.central.context.rng)
            self.metrics.record_fault(decision.fault)
            decisions[agent.name] = decision
            agent.state.last_intent = decision.subgoal
            if decision.subgoal.target:
                assigned.add((decision.subgoal.name, decision.subgoal.target))
        return decisions
