"""Exception types and the fault taxonomy used across the simulator.

The paper characterizes several qualitatively different ways in which an
LLM-driven embodied agent goes wrong: suboptimal plans, infeasible actions,
hallucinated objects, repeated/looping actions, and malformed (format
non-compliant) outputs that force a retry.  ``FaultKind`` enumerates that
taxonomy; the planning and reflection modules use it to drive error
injection and error correction respectively.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A system/agent/module configuration is invalid or inconsistent."""


class EnvironmentError_(ReproError):
    """An environment was driven into (or asked for) an invalid state.

    Named with a trailing underscore to avoid shadowing the builtin
    ``EnvironmentError`` alias of :class:`OSError`.
    """


class PlanningError(ReproError):
    """The planning module could not produce any plan at all."""


class ExecutionFailure(ReproError):
    """A low-level planner could not realize a primitive action sequence."""


class UnknownWorkloadError(ReproError):
    """Requested workload name is not present in the registry."""


class TrialExecutionError(ReproError):
    """A trial episode failed inside an executor (serial or worker process).

    The message names the failing job (workload, env, seed) so a crash in
    a 1000-cell sweep is attributable without re-running it; the original
    exception rides along as ``__cause__``.
    """


class UnknownModelError(ReproError):
    """Requested LLM/perception model profile does not exist."""


class BudgetExceededError(ReproError):
    """A fleet run hit its ``REPRO_BUDGET_TOKENS`` admission cap.

    Raised by :class:`~repro.core.fleet.FleetRunner` after it stops
    admitting new trial jobs and the in-flight ones have drained (their
    results are already persisted in the ledger, so a later run with a
    raised budget resumes where this one stopped).  ``report`` carries
    the partial-ledger summary: jobs completed vs. requested, tokens
    spent against the cap, and the per-deployment token/cost breakdown.
    """

    def __init__(self, message: str, report: str = ""):
        super().__init__(message)
        self.report = report


class FaultKind(enum.Enum):
    """Taxonomy of decision faults injected by the simulated LLM.

    Matches the failure modes the paper attributes to LLM-based modules:

    - ``SUBOPTIMAL``: a feasible but inefficient choice (extra steps).
    - ``INFEASIBLE``: an action whose preconditions do not hold.
    - ``HALLUCINATION``: references an object/location that does not exist.
    - ``REPEATED``: re-issues an action already known to have failed.
    - ``FORMAT``: output not parseable; costs a retry round-trip.
    - ``STALE_MEMORY``: acts on an outdated fact (memory inconsistency).
    """

    SUBOPTIMAL = "suboptimal"
    INFEASIBLE = "infeasible"
    HALLUCINATION = "hallucination"
    REPEATED = "repeated"
    FORMAT = "format"
    STALE_MEMORY = "stale_memory"

    @property
    def wastes_step(self) -> bool:
        """Whether this fault consumes an environment step when acted on.

        Format faults are caught at parse time and only cost LLM latency;
        every other fault produces an action that is executed (and fails or
        wastes effort), consuming a step.
        """
        return self is not FaultKind.FORMAT


#: Faults that a reflection module is able to detect after execution by
#: comparing the pre- and post-states (format faults never reach execution).
REFLECTABLE_FAULTS = frozenset(
    {
        FaultKind.SUBOPTIMAL,
        FaultKind.INFEASIBLE,
        FaultKind.HALLUCINATION,
        FaultKind.REPEATED,
        FaultKind.STALE_MEMORY,
    }
)
