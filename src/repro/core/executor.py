"""Trial execution engines: serial and process-parallel episode dispatch.

Every figure in the paper aggregates independent seeded trials, which
makes the trial grid embarrassingly parallel: episodes share no state
(each owns its RNG streams, clock, and environment), so they can run in
worker processes without perturbing determinism.  A
:class:`TrialExecutor` receives picklable :class:`TrialJob` work items
and produces their :class:`~repro.core.metrics.EpisodeResult`\\ s.

Two dispatch surfaces:

- :meth:`TrialExecutor.run_jobs` — batch mode: run every job, return
  results **in submission order** so aggregation downstream is
  bit-identical regardless of which worker finished first.
- :meth:`TrialExecutor.run_stream` — pipelined mode: accept a (possibly
  lazy) job iterable and yield ``(index, result)`` pairs **in completion
  order**.  This is what the fleet layer (:mod:`repro.core.fleet`) and
  the pipelined grid helpers build on: all cells of a sweep stay in
  flight at once (no per-cell barrier drains the pool), completed
  episodes can be checkpointed the moment they finish, and a lazy job
  iterable lets admission stop cleanly when a token budget trips.

``SerialExecutor`` (the default everywhere) runs jobs in-process exactly
as the seed code did; ``ParallelExecutor`` fans them out across a
``concurrent.futures.ProcessPoolExecutor``.  Experiment code normally
obtains an executor from :func:`get_executor`, which caches one pool per
*effective* ``(kind, worker count)`` — an unset worker count resolves to
:func:`default_worker_count` before keying, so ``max_workers=None`` and
an explicit default share one pool — and a full suite run reuses its
workers instead of re-forking per experiment cell.

Contracts:

- **Picklability** — a :class:`TrialJob` is frozen dataclasses of
  primitives all the way down; anything added to configs or tasks must
  stay picklable or parallel dispatch breaks.
- **Byte-identity** — ``run_jobs`` results return in submission order
  regardless of completion order, so parallel aggregates equal serial
  ones exactly (asserted by ``tests/core/test_executor.py`` and
  ``benchmarks/bench_executor.py``).
- **Knob precedence** — ``REPRO_WORKERS`` only supplies the *default*
  (serial at 1, parallel above); explicit ``ExperimentSettings(executor=,
  max_workers=)`` or a directly constructed executor always wins.
  Workers re-read ``REPRO_HOTPATH``/``REPRO_CLOCK``/``REPRO_SERVE`` from
  the environment at spawn — in-process overrides do not cross the pool
  boundary.
- **Failure surface** — a crashed trial raises ``TrialExecutionError``
  naming the job; it never hangs and never drops results.  The parallel
  stream watches completions (not submission order), so the first
  failure surfaces promptly even while earlier-submitted jobs are still
  running; results that completed before the failure are yielded first,
  which is what lets the fleet ledger keep them.
"""

from __future__ import annotations

import atexit
import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Iterator
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.errors import TrialExecutionError
from repro.core.metrics import EpisodeResult
from repro.core.types import TaskSpec

#: Executor kinds selectable via settings / ``REPRO_WORKERS``.
EXECUTOR_KINDS = ("serial", "parallel")


@dataclass(frozen=True)
class TrialJob:
    """One seeded episode of one configured system: the unit of dispatch.

    The triple is fully picklable (frozen dataclasses of primitives all
    the way down), so a job can cross a process boundary; the worker
    rebuilds the paradigm loop from it and runs the episode.
    """

    config: SystemConfig
    task: TaskSpec
    seed: int

    def describe(self) -> str:
        return f"{self.config.name}/{self.task.env_name} seed={self.seed}"


def run_trial_job(job: TrialJob) -> EpisodeResult:
    """Execute one job. Module-level so process pools can pickle it."""
    # Imported lazily: runner imports this module for its default executor.
    from repro.core.runner import build_loop

    return build_loop(job.config, job.task, job.seed).run()


#: A job-execution function.  The default runs a real episode; benches
#: and fleet tests substitute module-level synthetic runners (a sleeping
#: job, a crash injector) — it must stay picklable for process pools.
JobRunner = Callable[[TrialJob], EpisodeResult]


class TrialExecutor(ABC):
    """Strategy for running a batch of independent trial jobs."""

    kind: str = "abstract"

    @property
    def concurrency(self) -> int:
        """How many jobs this executor can usefully keep in flight.

        The fleet layer sizes its budget-admission window from this
        (``2 * concurrency``): wide enough to keep every worker busy,
        narrow enough that spend is re-checked before each pull.
        """
        return 1

    @abstractmethod
    def run_stream(
        self, jobs: Iterable[TrialJob], window: int | None = None
    ) -> Iterator[tuple[int, EpisodeResult]]:
        """Run jobs from a (possibly lazy) iterable, yielding completions.

        Yields ``(submission_index, result)`` pairs in completion order.
        ``window`` bounds how many jobs may be in flight (and therefore
        how far ahead of the consumer the job iterable is pulled);
        ``None`` submits eagerly for maximum pipelining.  A bounded
        window is how the fleet layer keeps budget admission honest: the
        job generator sees up-to-date spend before each pull.

        A job that raises must surface a :class:`TrialExecutionError`
        naming the failed job — never hang, never drop completed
        results (completions that beat the failure are yielded first).
        """

    def run_jobs(self, jobs: Iterable[TrialJob]) -> list[EpisodeResult]:
        """Run every job and return results in submission order.

        Built on :meth:`run_stream`: dispatch is pipelined/completion-
        ordered, the returned list is submission-ordered, so aggregates
        are byte-identical to a serial pass.
        """
        jobs = list(jobs)
        results: list[EpisodeResult | None] = [None] * len(jobs)
        for index, result in self.run_stream(jobs):
            results[index] = result
        # run_stream either yields every index or raises; the cast is safe.
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Release worker resources; the executor is unusable afterwards."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """In-process execution, bit-identical to the pre-executor seed code."""

    kind = "serial"

    def __init__(self, job_runner: JobRunner = run_trial_job):
        self._runner = job_runner

    def run_stream(
        self, jobs: Iterable[TrialJob], window: int | None = None
    ) -> Iterator[tuple[int, EpisodeResult]]:
        for index, job in enumerate(jobs):
            try:
                result = self._runner(job)
            except Exception as exc:
                raise TrialExecutionError(
                    f"trial {job.describe()} failed: {exc!r}"
                ) from exc
            yield index, result


def default_worker_count() -> int:
    """Worker count when none is given: every core the scheduler grants us."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux fallback
        return max(1, os.cpu_count() or 1)


class ParallelExecutor(TrialExecutor):
    """Fan jobs out across a lazily created process pool.

    The pool is created on first use (constructing the executor is free)
    and survives across ``run_jobs`` calls so sweeps amortize worker
    startup.  The stream watches completions: results are yielded the
    moment any worker finishes (the pipelining the fleet layer's
    checkpointing rides on), and a worker crash becomes an immediate,
    attributable exception instead of waiting behind earlier-submitted
    jobs that are still running.
    """

    kind = "parallel"

    @property
    def concurrency(self) -> int:
        return self.max_workers

    def __init__(
        self,
        max_workers: int | None = None,
        job_runner: JobRunner = run_trial_job,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._runner = job_runner
        self._pool: futures.ProcessPoolExecutor | None = None
        # run_jobs may be called from several threads at once (suite
        # --concurrent-sections); guard pool creation so only one pool
        # of workers ever exists per executor.
        self._lock = threading.Lock()

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = futures.ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def run_stream(
        self, jobs: Iterable[TrialJob], window: int | None = None
    ) -> Iterator[tuple[int, EpisodeResult]]:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        pool = self._ensure_pool()
        source = enumerate(jobs)
        in_flight: dict[futures.Future, tuple[int, TrialJob]] = {}
        exhausted = False

        def top_up() -> None:
            nonlocal exhausted
            while not exhausted and (window is None or len(in_flight) < window):
                try:
                    index, job = next(source)
                except StopIteration:
                    exhausted = True
                    return
                in_flight[pool.submit(self._runner, job)] = (index, job)

        try:
            top_up()
            while in_flight:
                done, _ = futures.wait(
                    in_flight, return_when=futures.FIRST_COMPLETED
                )
                # Yield this round's successes (submission order within
                # the round, for determinism of side effects) before
                # raising on its first failure, so a crash never
                # discards results that already completed.
                completed = sorted(
                    (in_flight.pop(future), future) for future in done
                )
                failure: tuple[TrialJob, BaseException] | None = None
                for (index, job), future in completed:
                    error = future.exception()
                    if error is None:
                        yield index, future.result()
                    elif failure is None:
                        failure = (job, error)
                if failure is not None:
                    job, error = failure
                    if isinstance(error, BrokenProcessPool):
                        self.close()
                        raise TrialExecutionError(
                            f"worker pool died while running trial {job.describe()}"
                        ) from error
                    raise TrialExecutionError(
                        f"trial {job.describe()} failed in worker: {error!r}"
                    ) from error
                top_up()
        finally:
            for future in in_flight:
                future.cancel()

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None


def make_executor(kind: str, max_workers: int | None = None) -> TrialExecutor:
    """Construct a fresh (uncached) executor of the given kind."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(max_workers=max_workers)
    raise ValueError(f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}")


_SHARED: dict[tuple[str, int], TrialExecutor] = {}
_SHARED_LOCK = threading.Lock()


def _shared_key(kind: str, max_workers: int | None) -> tuple[str, int]:
    """Cache key with the worker count resolved to its effective value.

    ``max_workers=None`` and an explicit ``default_worker_count()``
    configure the same pool, so they must share one cache slot — two
    pools for one effective configuration would double the forked
    workers.  Serial executors have no workers; they all key as 1.
    """
    if kind == "serial":
        return ("serial", 1)
    return (kind, max_workers or default_worker_count())


def get_executor(kind: str, max_workers: int | None = None) -> TrialExecutor:
    """Shared executor for the effective ``(kind, worker count)``.

    Parallel executors own a process pool, so experiment helpers share
    one instance per configuration rather than re-forking workers for
    every cell of a sweep.  Thread-safe (concurrent suite sections
    resolve their executor through here); pools are shut down at
    interpreter exit.
    """
    key = _shared_key(kind, max_workers)
    with _SHARED_LOCK:
        if key not in _SHARED:
            _SHARED[key] = make_executor(key[0], max_workers=key[1])
        return _SHARED[key]


def shutdown_shared_executors() -> None:
    """Close every cached executor (used by tests and atexit)."""
    with _SHARED_LOCK:
        for executor in _SHARED.values():
            executor.close()
        _SHARED.clear()


atexit.register(shutdown_shared_executors)
