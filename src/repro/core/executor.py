"""Trial execution engines: serial and process-parallel episode dispatch.

Every figure in the paper aggregates independent seeded trials, which
makes the trial grid embarrassingly parallel: episodes share no state
(each owns its RNG streams, clock, and environment), so they can run in
worker processes without perturbing determinism.  A
:class:`TrialExecutor` receives an ordered list of picklable
:class:`TrialJob` work items and returns their
:class:`~repro.core.metrics.EpisodeResult`\\ s **in submission order**,
so aggregation downstream is bit-identical regardless of which worker
finished first.

``SerialExecutor`` (the default everywhere) runs jobs in-process exactly
as the seed code did; ``ParallelExecutor`` fans them out across a
``concurrent.futures.ProcessPoolExecutor``.  Experiment code normally
obtains an executor from :func:`get_executor`, which caches one pool per
``(kind, max_workers)`` so a full suite run reuses its workers instead
of re-forking per experiment cell.

Contracts:

- **Picklability** — a :class:`TrialJob` is frozen dataclasses of
  primitives all the way down; anything added to configs or tasks must
  stay picklable or parallel dispatch breaks.
- **Byte-identity** — results return in submission order regardless of
  completion order, so parallel aggregates equal serial ones exactly
  (asserted by ``tests/core/test_executor.py`` and
  ``benchmarks/bench_executor.py``).
- **Knob precedence** — ``REPRO_WORKERS`` only supplies the *default*
  (serial at 1, parallel above); explicit ``ExperimentSettings(executor=,
  max_workers=)`` or a directly constructed executor always wins.
  Workers re-read ``REPRO_HOTPATH``/``REPRO_CLOCK``/``REPRO_SERVE`` from
  the environment at spawn — in-process overrides do not cross the pool
  boundary.
- **Failure surface** — a crashed trial raises ``TrialExecutionError``
  naming the job; it never hangs and never drops results.
"""

from __future__ import annotations

import atexit
import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Sequence
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.errors import TrialExecutionError
from repro.core.metrics import EpisodeResult
from repro.core.types import TaskSpec

#: Executor kinds selectable via settings / ``REPRO_WORKERS``.
EXECUTOR_KINDS = ("serial", "parallel")


@dataclass(frozen=True)
class TrialJob:
    """One seeded episode of one configured system: the unit of dispatch.

    The triple is fully picklable (frozen dataclasses of primitives all
    the way down), so a job can cross a process boundary; the worker
    rebuilds the paradigm loop from it and runs the episode.
    """

    config: SystemConfig
    task: TaskSpec
    seed: int

    def describe(self) -> str:
        return f"{self.config.name}/{self.task.env_name} seed={self.seed}"


def run_trial_job(job: TrialJob) -> EpisodeResult:
    """Execute one job. Module-level so process pools can pickle it."""
    # Imported lazily: runner imports this module for its default executor.
    from repro.core.runner import build_loop

    return build_loop(job.config, job.task, job.seed).run()


class TrialExecutor(ABC):
    """Strategy for running a batch of independent trial jobs."""

    kind: str = "abstract"

    @abstractmethod
    def run_jobs(self, jobs: Sequence[TrialJob]) -> list[EpisodeResult]:
        """Run every job and return results in submission order.

        A job that raises must surface a :class:`TrialExecutionError`
        naming the failed job — never hang, never drop results.
        """

    def close(self) -> None:
        """Release worker resources; the executor is unusable afterwards."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """In-process execution, bit-identical to the pre-executor seed code."""

    kind = "serial"

    def run_jobs(self, jobs: Sequence[TrialJob]) -> list[EpisodeResult]:
        results = []
        for job in jobs:
            try:
                results.append(run_trial_job(job))
            except Exception as exc:
                raise TrialExecutionError(
                    f"trial {job.describe()} failed: {exc!r}"
                ) from exc
        return results


def default_worker_count() -> int:
    """Worker count when none is given: every core the scheduler grants us."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux fallback
        return max(1, os.cpu_count() or 1)


class ParallelExecutor(TrialExecutor):
    """Fan jobs out across a lazily created process pool.

    The pool is created on first use (constructing the executor is free)
    and survives across ``run_jobs`` calls so sweeps amortize worker
    startup.  Results are collected future-by-future in submission
    order, which both preserves determinism and turns a worker crash
    into an immediate, attributable exception instead of a hang.
    """

    kind = "parallel"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._pool: futures.ProcessPoolExecutor | None = None
        # run_jobs may be called from several threads at once (suite
        # --concurrent-sections); guard pool creation so only one pool
        # of workers ever exists per executor.
        self._lock = threading.Lock()

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = futures.ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def run_jobs(self, jobs: Sequence[TrialJob]) -> list[EpisodeResult]:
        if not jobs:
            return []
        pool = self._ensure_pool()
        pending = [(job, pool.submit(run_trial_job, job)) for job in jobs]
        results = []
        try:
            for job, future in pending:
                try:
                    results.append(future.result())
                except BrokenProcessPool as exc:
                    self.close()
                    raise TrialExecutionError(
                        f"worker pool died while running trial {job.describe()}"
                    ) from exc
                except Exception as exc:
                    raise TrialExecutionError(
                        f"trial {job.describe()} failed in worker: {exc!r}"
                    ) from exc
        finally:
            for _job, future in pending:
                future.cancel()
        return results

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None


def make_executor(kind: str, max_workers: int | None = None) -> TrialExecutor:
    """Construct a fresh (uncached) executor of the given kind."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(max_workers=max_workers)
    raise ValueError(f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}")


_SHARED: dict[tuple[str, int | None], TrialExecutor] = {}
_SHARED_LOCK = threading.Lock()


def get_executor(kind: str, max_workers: int | None = None) -> TrialExecutor:
    """Shared executor for ``(kind, max_workers)``.

    Parallel executors own a process pool, so experiment helpers share
    one instance per configuration rather than re-forking workers for
    every cell of a sweep.  Thread-safe (concurrent suite sections
    resolve their executor through here); pools are shut down at
    interpreter exit.
    """
    key = (kind, max_workers)
    with _SHARED_LOCK:
        if key not in _SHARED:
            _SHARED[key] = make_executor(kind, max_workers=max_workers)
        return _SHARED[key]


def shutdown_shared_executors() -> None:
    """Close every cached executor (used by tests and atexit)."""
    with _SHARED_LOCK:
        for executor in _SHARED.values():
            executor.close()
        _SHARED.clear()


atexit.register(shutdown_shared_executors)
