"""Step-batched delivery bus: staged message delivery for the hot path.

The seed delivers every :class:`~repro.core.types.Message` to every
receiver *inline*: one ``Agent.receive_message`` per (message, receiver)
pair, each performing its own belief merge and its own dialogue-memory
write while the dialogue phase is still composing later messages.  The bus
restructures that fan-out without changing a byte of what is observed:

- **stage** (at compose time) appends the message to each receiver's
  step dialogue — later composes must still see it in their prompts — and
  charges the modeled ``store_dialogue`` latency at exactly the point on
  the virtual clock the per-delivery path charged it.  No belief or
  memory-index work happens yet.
- **flush** (once per phase, before anything reads beliefs again) gives
  each receiver *one* batched belief merge over its concatenated delivery
  stream (:meth:`repro.core.beliefs.Beliefs.update_batch`, in delivery
  order, so per-message novelty — the paper's usefulness metric — is
  counted identically) and *one* batched dialogue-memory commit
  (:meth:`repro.core.modules.memory.MemoryModule.commit_staged_messages`).
  Message-usefulness counters are then recorded per staged message, in
  send order.

Safe deferral rests on a property of the step pipeline: between a
delivery and the end of its phase, the only delivery-derived state anyone
reads is the receiver's step dialogue (compose prompts).  Beliefs are
next read by planning, memory by the next retrieval — both after the
flush points the paradigm loops install.  The memory module's read paths
guard against a forgotten flush.

The bus exists only on the optimized path (``REPRO_HOTPATH``); the seed
per-delivery fan-out remains the reference implementation in
:meth:`repro.core.paradigms.base.ParadigmLoop.deliver_message`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.modules.communication import CommunicationModule
from repro.core.types import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.agent import EmbodiedAgent, PerceptionBundle
    from repro.core.metrics import MetricsCollector


class DeliveryBus:
    """Collects one step's message deliveries and applies them in batch."""

    def __init__(
        self,
        agents: "list[EmbodiedAgent]",
        agents_by_name: "dict[str, EmbodiedAgent]",
        metrics: "MetricsCollector",
    ) -> None:
        self._agents = agents
        self._by_name = agents_by_name
        self._metrics = metrics
        self._staged: list[Message] = []
        #: Lifetime (message, receiver) pairs staged — an engagement
        #: counter for tests and diagnostics, never read by the pipeline.
        self.staged_deliveries = 0

    @property
    def pending(self) -> int:
        """Messages staged and not yet flushed."""
        return len(self._staged)

    def stage(
        self, message: Message, bundles: "dict[str, PerceptionBundle]"
    ) -> None:
        """Record one message for every recipient, deferring the merges.

        Recipient order is the order the per-delivery path iterated
        receivers in (the loops build ``message.recipients`` that way), so
        the per-receiver ``store_dialogue`` charges land on the virtual
        clock in the seed's exact sequence.
        """
        for name in message.recipients:
            self._by_name[name].stage_message(message, bundles[name])
        self._staged.append(message)
        self.staged_deliveries += len(message.recipients)

    def flush(self, bundles: "dict[str, PerceptionBundle]") -> None:
        """Apply every staged delivery: one batched merge per receiver.

        Per receiver, the staged messages addressed to it are merged in
        delivery order — payload facts then intent facts per message,
        exactly as ``receive_message`` interleaved them — so each payload
        sees the same prior belief state as on the per-delivery path and
        novelty counts agree exactly.  Usefulness is then recorded per
        message (summed over its receivers) in send order.
        """
        staged = self._staged
        if not staged:
            return
        self._staged = []
        intent_chunks = [CommunicationModule.intent_facts(m) for m in staged]
        novel_totals = [0] * len(staged)
        for agent in self._agents:
            name = agent.name
            indices = [
                index
                for index, message in enumerate(staged)
                if name in message.recipients
            ]
            if not indices:
                continue
            chunks: list = []
            for index in indices:
                chunks.append(staged[index].facts)
                chunks.append(intent_chunks[index])
            counts = bundles[name].beliefs.update_batch(chunks)
            for position, index in enumerate(indices):
                # Even positions are payload chunks; intent merges (odd
                # positions) never count toward novelty, as in the seed.
                novel_totals[index] += counts[2 * position]
            if agent.memory is not None:
                agent.memory.commit_staged_messages()
        for novel_total in novel_totals:
            self._metrics.record_message(useful=novel_total > 0)
