"""Shared parsing for the ``REPRO_*`` environment knobs.

Every runtime knob in the repo reads the environment through these three
helpers so the tolerances are uniform: values are whitespace-stripped,
empty/unset always means "use the default", and malformed values raise a
``ValueError`` naming the variable instead of being silently coerced.

Adopters: ``REPRO_TRIALS`` / ``REPRO_WORKERS`` / ``REPRO_SERVE_CAP`` /
``REPRO_HTTP_RETRIES`` (:func:`int_knob`, via ``experiments/common.py``
and the serving layer), ``REPRO_HOTPATH`` / ``REPRO_SUITE_CONCURRENT`` /
``REPRO_OVERLAP`` (:func:`bool_knob`), ``REPRO_CLOCK`` / ``REPRO_SERVE``
/ ``REPRO_DETECTOR`` (:func:`choice_knob`), ``REPRO_HTTP_TIMEOUT`` / ``REPRO_HTTP_BACKOFF`` /
``REPRO_HTTP_FAULT_RATE`` (:func:`float_knob`).  The knob table with
defaults and precedence rules lives in docs/performance.md and the
serving-specific knobs in docs/serving.md.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

#: Spellings every boolean knob accepts as "off".
FALSE_VALUES = frozenset({"0", "off", "false", "no"})


def raw_knob(name: str) -> str:
    """The knob's raw value, whitespace-stripped ('' when unset)."""
    return os.environ.get(name, "").strip()


def int_knob(name: str, default: int, minimum: int = 1) -> int:
    """Read an integer knob, tolerating stray whitespace.

    Empty / unset values fall back to ``default``; non-integers and
    values below ``minimum`` raise ``ValueError`` naming the variable.

    >>> import os; os.environ["DOCTEST_KNOB_N"] = " 3 "
    >>> int_knob("DOCTEST_KNOB_N", default=1)
    3
    >>> del os.environ["DOCTEST_KNOB_N"]
    >>> int_knob("DOCTEST_KNOB_N", default=7)
    7
    """
    raw = raw_knob(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def float_knob(name: str, default: float, minimum: float = 0.0) -> float:
    """Read a float knob, tolerating stray whitespace.

    Empty / unset values fall back to ``default``; non-numbers and
    values below ``minimum`` raise ``ValueError`` naming the variable.

    >>> import os; os.environ["DOCTEST_KNOB_F"] = " 2.5 "
    >>> float_knob("DOCTEST_KNOB_F", default=1.0)
    2.5
    >>> del os.environ["DOCTEST_KNOB_F"]
    >>> float_knob("DOCTEST_KNOB_F", default=0.25)
    0.25
    """
    raw = raw_knob(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def bool_knob(name: str, default: bool) -> bool:
    """Read a boolean knob: unset means ``default``, :data:`FALSE_VALUES`
    mean off (case-insensitive), anything else means on."""
    raw = raw_knob(name).lower()
    if not raw:
        return default
    return raw not in FALSE_VALUES


def choice_knob(name: str, default: str, choices: Sequence[str]) -> str:
    """Read an enumerated knob; unknown values raise naming the choices.

    The comparison is case-insensitive and the canonical (lower-case)
    spelling is returned, so callers can compare with ``==`` safely.
    """
    raw = raw_knob(name).lower()
    if not raw:
        return default
    if raw not in choices:
        raise ValueError(
            f"{name} must be one of {tuple(choices)}, got {raw!r}"
        )
    return raw
