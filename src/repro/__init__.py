"""repro: reproduction of "Generative AI in Embodied Systems" (ISPASS 2025).

A system-level simulation and benchmarking suite for LLM-driven embodied
agents.  The public API re-exports the pieces a downstream user needs:

- :func:`run_episode` / :func:`run_trials` — execute configured systems,
- :data:`repro.workloads.WORKLOAD_SUITE` — the 14 benchmarked systems,
- :class:`SystemConfig` — declare custom systems,
- :mod:`repro.experiments` — regenerate every paper table and figure.
"""

from repro.core import (
    AggregateResult,
    EpisodeResult,
    FaultKind,
    MemoryConfig,
    ModuleName,
    OptimizationConfig,
    ParallelExecutor,
    SerialExecutor,
    SystemConfig,
    TaskSpec,
    TrialExecutor,
    run_episode,
    run_trials,
)
from repro.envs import make_env, make_task
from repro.workloads import WORKLOAD_SUITE, get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "AggregateResult",
    "EpisodeResult",
    "FaultKind",
    "MemoryConfig",
    "ModuleName",
    "OptimizationConfig",
    "ParallelExecutor",
    "SerialExecutor",
    "SystemConfig",
    "TaskSpec",
    "TrialExecutor",
    "WORKLOAD_SUITE",
    "__version__",
    "get_workload",
    "list_workloads",
    "make_env",
    "make_task",
    "run_episode",
    "run_trials",
]
