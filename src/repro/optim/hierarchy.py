"""Hierarchical cooperative paradigm (paper Recommendation 9).

Agents are grouped into clusters.  Within a cluster, the cluster lead
plans jointly for its members (one LLM call per cluster, coordination
penalty capped at the cluster size); across clusters, only the leads
exchange one dialogue round.  This bounds both failure modes the paper
identifies at scale: the centralized planner's joint-action-space blowup
(n_joint ≤ cluster size) and the decentralized dialogue explosion
(messages ∝ #clusters, not #agents).
"""

from __future__ import annotations

from repro.core.agent import EmbodiedAgent, PerceptionBundle
from repro.core.clock import ModuleName
from repro.core.paradigms.base import ParadigmLoop
from repro.core.paradigms.centralized import filter_assigned
from repro.core.types import Decision, StepRecord
from repro.llm.behavior import DecisionRequest
from repro.llm.prompt import PromptBuilder
from repro.llm.requests import InferenceRequest
from repro.llm.simulated import OUTPUT_TOKENS


def cluster_agents(
    agents: list[EmbodiedAgent], cluster_size: int
) -> list[list[EmbodiedAgent]]:
    """Partition agents into contiguous clusters of at most ``cluster_size``."""
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1: {cluster_size}")
    return [
        agents[start : start + cluster_size]
        for start in range(0, len(agents), cluster_size)
    ]


class HierarchicalLoop(ParadigmLoop):
    """Clustered cooperation: central within clusters, decentral across."""

    def __init__(self, config, task, seed) -> None:
        super().__init__(config, task, seed)
        size = config.optimizations.hierarchy_cluster_size
        if size < 1:
            raise ValueError("HierarchicalLoop requires hierarchy_cluster_size >= 1")
        self.clusters = cluster_agents(self.agents, size)

    def step(self, step: int) -> None:
        bundles = self.perceive_all(step)
        self._lead_dialogue(step, bundles)
        decisions: dict[str, Decision] = {}
        for cluster in self.clusters:
            decisions.update(self._cluster_plan(step, cluster, bundles))
        # Cluster plans are issued independently per lead: under batched
        # serving they dispatch here as one batch across clusters.
        self.flush_inference()
        for agent in self.agents:
            decision = decisions[agent.name]
            if agent is self._lead_of(agent):
                self.execute_and_reflect(step, agent, bundles[agent.name], decision)
            else:
                outcome = agent.act(self.env, decision)
                corrected = False
                lead = self._lead_of(agent)
                if lead.reflection is not None:
                    report = lead.reflection.review(step, decision, outcome)
                    if report.judged_failure:
                        corrected = True
                        lead.state.add_blacklist(decision.subgoal, step)
                agent.state.note_outcome(
                    decision,
                    wasted=self.is_wasteful(decision, outcome),
                    corrected=corrected,
                )
                self.metrics.record_step(
                    StepRecord(
                        step=step,
                        agent=agent.name,
                        subgoal=decision.subgoal,
                        fault=decision.fault,
                        reflected=corrected,
                        primitive_count=outcome.primitive_count,
                        execution_success=outcome.success,
                    )
                )

    def _lead_of(self, agent: EmbodiedAgent) -> EmbodiedAgent:
        for cluster in self.clusters:
            if agent in cluster:
                return cluster[0]
        raise LookupError(f"agent {agent.name} not in any cluster")

    # ------------------------------------------------------------------ #
    # Cross-cluster dialogue: leads only, one round
    # ------------------------------------------------------------------ #

    def _lead_dialogue(self, step: int, bundles: dict[str, PerceptionBundle]) -> None:
        leads = [cluster[0] for cluster in self.clusters]
        if len(leads) < 2:
            return
        for lead in leads:
            if lead.comm is None:
                continue
            bundle = bundles[lead.name]
            message = lead.comm.compose(
                step=step,
                recipients=tuple(other.name for other in leads if other is not lead),
                known_facts=list(bundle.current_facts) + bundle.memory_facts,
                intent=lead.state.last_intent,
                dialogue=bundle.dialogue,
            )
            if message is None:
                continue
            self.deliver_message(message, bundles)
        # Cluster planning reads the leads' merged beliefs next.
        self.flush_deliveries(bundles)
        # The leads' round of composes is the phase-concurrent unit.
        self.flush_inference()

    # ------------------------------------------------------------------ #
    # Within-cluster joint planning
    # ------------------------------------------------------------------ #

    def _cluster_plan(
        self,
        step: int,
        cluster: list[EmbodiedAgent],
        bundles: dict[str, PerceptionBundle],
    ) -> dict[str, Decision]:
        lead = cluster[0]
        lead_bundle = bundles[lead.name]
        for member in cluster[1:]:
            lead_bundle.beliefs.update(bundles[member.name].current_facts)
        candidates_by_agent = {
            member.name: self.env.candidates(member.name, lead_bundle.beliefs)
            for member in cluster
        }
        builder = PromptBuilder(
            system_text=(
                "You coordinate a small robot cluster. Choose one candidate "
                "action per cluster member."
            ),
            task_text=lead.planner.task_text,
        )
        builder.observation(lead_bundle.observation)
        builder.memory(lead_bundle.memory_facts)
        builder.dialogue(lead_bundle.dialogue, window_key=lead.name)
        for name, candidates in candidates_by_agent.items():
            builder.candidates(candidates)
            builder.static_extra("agent_header", f"Options above are for {name}.")
        prompt = builder.build()
        output_tokens = OUTPUT_TOKENS["plan"] + 45 * (len(cluster) - 1)
        self.scheduler.submit(
            lead.planner_llm,
            InferenceRequest(
                kind="completion",
                purpose="plan",
                prompt=prompt,
                module=ModuleName.PLANNING,
                phase="cluster_plan",
                agent=lead.name,
                step=step,
                output_tokens=output_tokens,
            ),
        )
        decisions: dict[str, Decision] = {}
        blacklist = lead.state.blacklisted(step)
        assigned: set[tuple[str, str]] = set()
        for member in cluster:
            request = DecisionRequest(
                candidates=filter_assigned(candidates_by_agent[member.name], assigned),
                difficulty=self.env.task.difficulty,
                n_joint=len(cluster),
                blacklist=blacklist,
            )
            outcome = lead.planner_llm.kernel.decide(
                request, prompt.tokens, lead.context.rng
            )
            decision = Decision(
                subgoal=outcome.candidate.subgoal,
                fault=outcome.fault,
                prompt_tokens=prompt.tokens if member is lead else 0,
                output_tokens=0,
                latency=0.0,
            )
            decision = member.state.maybe_repeat_fault(decision, lead.context.rng)
            self.metrics.record_fault(decision.fault)
            decisions[member.name] = decision
            member.state.last_intent = decision.subgoal
            if decision.subgoal.target:
                assigned.add((decision.subgoal.name, decision.subgoal.target))
        return decisions
