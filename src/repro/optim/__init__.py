"""Optimization strategies from the paper's recommendations (Sec. IV-VI)."""

from repro.optim.hierarchy import HierarchicalLoop, cluster_agents
from repro.optim.recommendations import (
    RECOMMENDATIONS,
    with_batching,
    with_comm_filter,
    with_continuous_serving,
    with_dual_memory,
    with_hierarchy,
    with_mlc_runtime,
    with_multistep_planning,
    with_plan_then_comm,
    with_quantization,
    with_serving,
    with_vector_planning,
)

__all__ = [
    "HierarchicalLoop",
    "RECOMMENDATIONS",
    "cluster_agents",
    "with_batching",
    "with_comm_filter",
    "with_continuous_serving",
    "with_dual_memory",
    "with_hierarchy",
    "with_mlc_runtime",
    "with_multistep_planning",
    "with_plan_then_comm",
    "with_quantization",
    "with_serving",
    "with_vector_planning",
]
