"""Apply the paper's optimization recommendations to system configs.

Each helper transforms a :class:`~repro.core.config.SystemConfig` into its
optimized variant, so ablation benchmarks can compare baseline vs
recommendation side by side.  The mapping to the paper:

- Rec. 1  → :func:`with_batching`, :func:`with_quantization`, :func:`with_mlc_runtime`
- Rec. 5  → :func:`with_dual_memory`
- Rec. 7  → :func:`with_multistep_planning`
- Rec. 8  → :func:`with_plan_then_comm`
- Rec. 9  → :func:`with_hierarchy`
- Rec. 10 → :func:`with_comm_filter`
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import MemoryConfig, SystemConfig


def with_multistep_planning(config: SystemConfig, horizon: int = 3) -> SystemConfig:
    """Rec. 7: one planning call guides ``horizon`` consecutive steps."""
    return config.with_optimizations(multistep_horizon=horizon)


def with_plan_then_comm(config: SystemConfig) -> SystemConfig:
    """Rec. 8: communicate only after planning deems it necessary."""
    return config.with_optimizations(plan_then_comm=True)


def with_comm_filter(config: SystemConfig) -> SystemConfig:
    """Rec. 10: suppress messages with no novel payload."""
    return config.with_optimizations(comm_filter=True)


def with_hierarchy(config: SystemConfig, cluster_size: int = 3) -> SystemConfig:
    """Rec. 9: clustered cooperation for multi-agent systems."""
    if not config.is_multi_agent:
        raise ValueError("hierarchy applies to multi-agent systems only")
    return config.with_optimizations(hierarchy_cluster_size=cluster_size)


def with_batching(config: SystemConfig) -> SystemConfig:
    """Rec. 1: aggregate per-agent LLM requests into one batch."""
    return config.with_optimizations(batching=True)


def with_serving(config: SystemConfig, mode: str) -> SystemConfig:
    """Rec. 1: pin the system to one inference-serving mode.

    The per-cell control the serving grids (Fig. 8,
    ``benchmarks/bench_serving.py``) use to mix modes in one process.
    Not in :data:`RECOMMENDATIONS` — the ablation sweeps keep comparing
    the ``batching`` flag, whose outputs are golden-gated.
    """
    return config.with_optimizations(serve_mode=mode)


def with_continuous_serving(config: SystemConfig) -> SystemConfig:
    """Rec. 1: serve through the continuous-batching engine
    (arrival-time queue, in-flight joins, charged queueing delay)."""
    return with_serving(config, "continuous")


def with_vector_planning(config: SystemConfig) -> SystemConfig:
    """Run the system's noisy detectors in batched ``vector`` mode.

    Pins ``detector_mode="vector"``: per-fact recall/mislabel draws are
    batched into three array calls with the same per-kind draw counts as
    the loop detector but a reordered stream, so noisy aggregates carry
    the documented byte-identity waiver (docs/performance.md).  Not in
    :data:`RECOMMENDATIONS` — like :func:`with_serving` it is an
    infrastructure control, not a paper recommendation, and the golden
    ablation sweeps stay on the ``loop`` reference.
    """
    return config.with_optimizations(detector_mode="vector")


def with_quantization(config: SystemConfig) -> SystemConfig:
    """Rec. 1: AWQ 4-bit quantization for locally served models."""
    return config.with_optimizations(quantization="awq")


def with_mlc_runtime(config: SystemConfig) -> SystemConfig:
    """Rec. 1: MLC-style compiled serving runtime for local models."""
    return config.with_optimizations(runtime="mlc")


def with_dual_memory(config: SystemConfig) -> SystemConfig:
    """Rec. 5: long/short-term dual memory structure."""
    base = config.memory or MemoryConfig()
    return replace(
        config,
        name=f"{config.name}-dualmem",
        memory=replace(base, dual=True),
    )


#: Name → transform, for sweep-style ablation harnesses.
RECOMMENDATIONS = {
    "multistep_planning": with_multistep_planning,
    "plan_then_comm": with_plan_then_comm,
    "comm_filter": with_comm_filter,
    "hierarchy": with_hierarchy,
    "batching": with_batching,
    "quantization": with_quantization,
    "mlc_runtime": with_mlc_runtime,
    "dual_memory": with_dual_memory,
}
