"""Household environment: VirtualHome / C-WAH / BEHAVIOR-1K substitute.

A multi-room house where agents relocate goal objects to target fixtures
("put the apple in the fridge").  Exercises the full modular pipeline:
exploration under partial observability, memory of object locations,
A*-based navigation, optional grasp/RRT manipulation styles, and
multi-agent contention over objects.

Used by: DaDu-E (single agent, grasp execution), OLA (centralized
multi-agent), COHERENT (centralized heterogeneous robots, RRT arms).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.errors import EnvironmentError_
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.candidates import CandidateSlot, idle_candidates
from repro.envs.grid import Cell, RoomGrid, build_row_of_rooms
from repro.planners.costmodel import ComputeCost
from repro.planners.grasp import plan_grasp

#: Seconds of actuation per grid move.
MOVE_SECONDS = 0.45
#: Seconds for a simple (non-grasp) pick or place.
MANIPULATE_SECONDS = 1.6
#: RRT iterations charged per arm manipulation when ``arm_rrt`` is set.
ARM_RRT_ITERATIONS = 260
#: Extra actuation seconds for an RRT-planned arm motion.
ARM_RRT_SECONDS = 2.8

_ROOM_NAMES = ["kitchen", "livingroom", "bedroom", "bathroom", "study"]
_FIXTURES = {
    "kitchen": ["fridge", "counter"],
    "livingroom": ["shelf", "coffee_table"],
    "bedroom": ["bed", "dresser"],
    "bathroom": ["bath_cabinet"],
    "study": ["desk"],
}
_OBJECT_NAMES = [
    "apple",
    "book",
    "mug",
    "remote",
    "pillow",
    "plate",
    "toy_shark",
    "bottle",
    "towel",
    "lamp",
    "folder",
    "banana",
    "vase",
    "charger",
    "notebook",
    "cup",
]

_DIFFICULTY_SETTINGS = {
    "easy": {"rooms": 3, "goals": 3, "distractors": 3},
    "medium": {"rooms": 4, "goals": 7, "distractors": 5},
    "hard": {"rooms": 5, "goals": 11, "distractors": 5},
}


@dataclass
class _HouseObject:
    name: str
    cell: Cell
    room: str
    held_by: str = ""
    placed_at: str = ""  # fixture name once delivered


@dataclass
class _HouseAgent:
    name: str
    cell: Cell
    carrying: str = ""


class HouseholdEnv(Environment):
    """See module docstring."""

    name = "household"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        settings = _DIFFICULTY_SETTINGS[task.difficulty]
        self.grid: RoomGrid = build_row_of_rooms(_ROOM_NAMES[: settings["rooms"]])
        self.use_grasp: bool = bool(task.params.get("grasp", False))
        self.arm_rrt: bool = bool(task.params.get("arm_rrt", False))

        self.fixtures: dict[str, tuple[str, Cell]] = {}
        for room_name in self.grid.room_names():
            for fixture in _FIXTURES[room_name]:
                self.fixtures[fixture] = (
                    room_name,
                    self.grid.random_cell_in(room_name, rng),
                )

        n_objects = settings["goals"] + settings["distractors"]
        names = list(_OBJECT_NAMES[:n_objects])
        self.objects: dict[str, _HouseObject] = {}
        for obj_name in names:
            room_name = self.grid.room_names()[int(rng.integers(settings["rooms"]))]
            self.objects[obj_name] = _HouseObject(
                name=obj_name,
                cell=self.grid.random_cell_in(room_name, rng),
                room=room_name,
            )

        fixture_names = list(self.fixtures)
        self.goals: dict[str, str] = {}
        goal_objects = list(rng.permutation(names))[: settings["goals"]]
        for obj_name in goal_objects:
            target = fixture_names[int(rng.integers(len(fixture_names)))]
            self.goals[str(obj_name)] = target

        start_room = self.grid.room_names()[0]
        self._agents: dict[str, _HouseAgent] = {
            agent: _HouseAgent(name=agent, cell=self.grid.random_cell_in(start_room, rng))
            for agent in self.agents
        }

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        cell = self._agents[agent].cell
        return self.grid.room_of(cell) or f"cell_{cell[0]}_{cell[1]}"

    def visible_facts(self, agent: str) -> list[Fact]:
        room = self.agent_position(agent)
        step = self.state.step_index
        facts = [Fact(subject=room, relation="visited", value="true", step=step)]
        for obj in self.objects.values():
            if obj.held_by == agent:
                facts.append(
                    Fact(subject=obj.name, relation="held_by", value=agent, step=step)
                )
            elif obj.placed_at:
                if self.fixtures[obj.placed_at][0] == room:
                    facts.append(
                        Fact(
                            subject=obj.name,
                            relation="placed_at",
                            value=obj.placed_at,
                            step=step,
                        )
                    )
            elif not obj.held_by and obj.room == room:
                facts.append(
                    Fact(subject=obj.name, relation="located_in", value=room, step=step)
                )
                # Seeing the object free *retracts* any stale held_by
                # belief (slot-based overwrite) — without this, an object
                # once picked up and put back down would be believed held
                # forever and the task would deadlock.
                facts.append(
                    Fact(subject=obj.name, relation="held_by", value="nobody", step=step)
                )
        return sorted(facts, key=lambda fact: (fact.subject, fact.relation))

    def static_facts(self) -> list[Fact]:
        """Floor-plan knowledge every agent starts with."""
        return [
            Fact(subject=fixture, relation="fixture_in", value=room)
            for fixture, (room, _cell) in sorted(self.fixtures.items())
        ]

    def location_vocabulary(self) -> list[str]:
        return self.grid.room_names()

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidate_slots(self, agent: str, beliefs: Beliefs) -> list[CandidateSlot]:
        me = self._agents[agent]
        slots: list[CandidateSlot] = []

        if me.carrying:
            slots.append(
                CandidateSlot("carry", (me.carrying,), partial(self._carry_options, me))
            )
        else:
            for obj_name, target_fixture in self.goals.items():
                obj = self.objects[obj_name]
                offered = (
                    obj.placed_at != target_fixture
                    and bool(beliefs.value(obj_name, "located_in"))
                    and beliefs.value(obj_name, "held_by") in (None, "nobody")
                )
                slots.append(
                    CandidateSlot(
                        f"fetch:{obj_name}",
                        (offered,),
                        partial(self._fetch_option, obj_name, offered),
                    )
                )
            # A deliver without holding anything: classic infeasible option.
            first_pending = next(
                (
                    name
                    for name, fixture in self.goals.items()
                    if self.objects[name].placed_at != fixture
                ),
                None,
            )
            slots.append(
                CandidateSlot(
                    "deliver_infeasible",
                    (first_pending,),
                    partial(self._infeasible_deliver, first_pending),
                )
            )

        for room_name in self.grid.room_names():
            visited = beliefs.value(room_name, "visited") == "true"
            slots.append(
                CandidateSlot(
                    f"explore:{room_name}",
                    (visited,),
                    partial(self._explore_option, room_name, visited),
                )
            )

        slots.append(CandidateSlot("idle", (), partial(idle_candidates, 0.02)))
        slots.append(CandidateSlot("hallucination", (), self.hallucination_candidates))
        return slots

    def _carry_options(self, me: _HouseAgent) -> list[Candidate]:
        options: list[Candidate] = []
        target_fixture = self.goals.get(me.carrying, "")
        if target_fixture:
            options.append(
                Candidate(
                    subgoal=Subgoal(
                        name="deliver", target=me.carrying, destination=target_fixture
                    ),
                    utility=1.0,
                )
            )
        options.append(
            Candidate(subgoal=Subgoal(name="putdown", target=me.carrying), utility=0.15)
        )
        return options

    @staticmethod
    def _fetch_option(obj_name: str, offered: bool) -> list[Candidate]:
        if not offered:
            return []
        return [Candidate(subgoal=Subgoal(name="fetch", target=obj_name), utility=0.85)]

    def _infeasible_deliver(self, first_pending: str | None) -> list[Candidate]:
        if first_pending is None:
            return []
        return [
            Candidate(
                subgoal=Subgoal(
                    name="deliver",
                    target=first_pending,
                    destination=self.goals[first_pending],
                ),
                utility=0.0,
                feasible=False,
            )
        ]

    @staticmethod
    def _explore_option(room_name: str, visited: bool) -> list[Candidate]:
        utility = 0.12 if visited else 0.4
        return [Candidate(subgoal=Subgoal(name="explore", target=room_name), utility=utility)]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        handler = {
            "explore": self._do_explore,
            "fetch": self._do_fetch,
            "deliver": self._do_deliver,
            "putdown": self._do_putdown,
            "idle": self._do_idle,
        }.get(subgoal.name)
        if handler is None:
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        return handler(agent, subgoal, rng)

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        me = self._agents[agent]
        if subgoal.name == "explore" and subgoal.target in self.grid.room_names():
            target = self.grid.room_named(subgoal.target).center()
            return max(1, abs(me.cell[0] - target[0]) + abs(me.cell[1] - target[1]))
        if subgoal.name == "fetch" and subgoal.target in self.objects:
            obj = self.objects[subgoal.target]
            return 1 + abs(me.cell[0] - obj.cell[0]) + abs(me.cell[1] - obj.cell[1])
        if subgoal.name == "deliver" and subgoal.destination in self.fixtures:
            cell = self.fixtures[subgoal.destination][1]
            return 1 + abs(me.cell[0] - cell[0]) + abs(me.cell[1] - cell[1])
        return 1

    def _navigate(self, me: _HouseAgent, goal_cell: Cell) -> tuple[int, ComputeCost, float]:
        result = self.grid.path(me.cell, goal_cell)
        if not result.found:
            raise EnvironmentError_(
                f"no path from {me.cell} to {goal_cell} in household grid"
            )
        me.cell = goal_cell
        cost = ComputeCost(astar_expansions=result.expansions)
        return result.cost, cost, result.cost * MOVE_SECONDS

    def _manipulation(self, rng: np.random.Generator) -> tuple[bool, ComputeCost, float]:
        """One pick/place, styled per workload (plain, grasp, or RRT arm)."""
        if self.use_grasp:
            grasp = plan_grasp(rng)
            return grasp.success, grasp.cost, grasp.actuation_seconds
        if self.arm_rrt:
            return True, ComputeCost(rrt_iterations=ARM_RRT_ITERATIONS), ARM_RRT_SECONDS
        return True, ComputeCost(), MANIPULATE_SECONDS

    def _do_explore(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.target not in self.grid.room_names():
            return ExecutionOutcome.failure(f"unknown room {subgoal.target!r}")
        me = self._agents[agent]
        moves, compute, actuation = self._navigate(
            me, self.grid.random_cell_in(subgoal.target, rng)
        )
        return ExecutionOutcome(
            success=True,
            primitive_count=max(1, moves),
            compute=compute,
            actuation_seconds=actuation,
        )

    def _do_fetch(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        obj = self.objects.get(subgoal.target)
        if obj is None:
            return ExecutionOutcome.failure(f"no such object {subgoal.target!r}")
        me = self._agents[agent]
        if me.carrying:
            return ExecutionOutcome.failure("hands full")
        if obj.held_by or obj.placed_at:
            return ExecutionOutcome.failure("object unavailable")
        if not self.claim(f"object:{obj.name}", agent):
            return ExecutionOutcome.failure("object claimed by teammate")
        moves, compute, actuation = self._navigate(me, obj.cell)
        picked, pick_cost, pick_time = self._manipulation(rng)
        compute = compute + pick_cost
        actuation += pick_time
        if not picked:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=compute,
                actuation_seconds=actuation,
                reason="grasp failed",
            )
        obj.held_by = agent
        me.carrying = obj.name
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 1,
            compute=compute,
            actuation_seconds=actuation,
        )

    def _do_deliver(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        me = self._agents[agent]
        if me.carrying != subgoal.target:
            return ExecutionOutcome.failure("not holding target object")
        if subgoal.destination not in self.fixtures:
            return ExecutionOutcome.failure(f"unknown fixture {subgoal.destination!r}")
        room, cell = self.fixtures[subgoal.destination]
        moves, compute, actuation = self._navigate(me, cell)
        placed, place_cost, place_time = self._manipulation(rng)
        compute = compute + place_cost
        actuation += place_time
        if not placed:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=compute,
                actuation_seconds=actuation,
                reason="place failed",
            )
        obj = self.objects[subgoal.target]
        obj.held_by = ""
        obj.room = room
        obj.cell = cell
        obj.placed_at = subgoal.destination
        me.carrying = ""
        delta = 1.0 / max(1, len(self.goals))
        progress = delta if self.goals.get(subgoal.target) == subgoal.destination else 0.0
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 1,
            compute=compute,
            actuation_seconds=actuation,
            progress_delta=progress,
        )

    def _do_putdown(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        me = self._agents[agent]
        if not me.carrying:
            return ExecutionOutcome.failure("not holding anything")
        obj = self.objects[me.carrying]
        obj.held_by = ""
        obj.cell = me.cell
        obj.room = self.grid.room_of(me.cell) or obj.room
        me.carrying = ""
        return ExecutionOutcome(
            success=True,
            primitive_count=1,
            compute=ComputeCost(),
            actuation_seconds=MANIPULATE_SECONDS,
        )

    def _do_idle(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        return ExecutionOutcome(
            success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
        )

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        done = sum(
            1
            for obj_name, fixture in self.goals.items()
            if self.objects[obj_name].placed_at == fixture
        )
        return done / max(1, len(self.goals))

    def describe_task(self) -> str:
        clauses = [
            f"put the {obj_name} at the {fixture}"
            for obj_name, fixture in sorted(self.goals.items())
        ]
        return "Household task: " + "; ".join(clauses) + "."
