"""Environment substrates and the environment registry."""

from __future__ import annotations

import numpy as np

from repro.core.seeding import rng_for
from repro.core.types import TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.boxworld import BoxWorldEnv
from repro.envs.cuisine import CuisineEnv
from repro.envs.household import HouseholdEnv
from repro.envs.kitchen import KitchenEnv
from repro.envs.mineworld import MineWorldEnv
from repro.envs.tabletop import TabletopEnv
from repro.envs.tasks import default_horizon, make_task
from repro.envs.transport import TransportEnv

ENVIRONMENTS: dict[str, type[Environment]] = {
    HouseholdEnv.name: HouseholdEnv,
    TransportEnv.name: TransportEnv,
    CuisineEnv.name: CuisineEnv,
    BoxWorldEnv.name: BoxWorldEnv,
    MineWorldEnv.name: MineWorldEnv,
    KitchenEnv.name: KitchenEnv,
    TabletopEnv.name: TabletopEnv,
}


def make_env(task: TaskSpec, rng: np.random.Generator | None = None) -> Environment:
    """Instantiate the environment named by ``task.env_name``."""
    try:
        env_cls = ENVIRONMENTS[task.env_name]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENTS))
        raise KeyError(f"unknown environment {task.env_name!r}; known: {known}") from None
    if rng is None:
        rng = rng_for(task.seed, "env", task.env_name)
    return env_cls(task, rng)


__all__ = [
    "BoxWorldEnv",
    "CuisineEnv",
    "ENVIRONMENTS",
    "Environment",
    "ExecutionOutcome",
    "HouseholdEnv",
    "KitchenEnv",
    "MineWorldEnv",
    "TabletopEnv",
    "TransportEnv",
    "default_horizon",
    "make_env",
    "make_task",
]
