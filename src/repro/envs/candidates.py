"""Incremental candidate enumeration keyed on belief deltas.

Environment ``candidates()`` is one of the dominant per-step costs of the
optimized episode loop (the ``planning/plan`` phase of ``REPRO_PROFILE``):
every macro step rebuilds the full list of :class:`~repro.core.types.Candidate`
/ :class:`~repro.core.types.Subgoal` objects from scratch, even though an
agent's beliefs — and therefore its affordances — change in only a few slots
per step.

This module provides the machinery for rebuilding *only what changed*:

- A :class:`CandidateSlot` is one independently-cacheable group of
  candidates (one goal object's fetch option, one room's explore option,
  the craft menu, ...).  Its ``deps`` tuple captures **every** input the
  builder reads — belief values and mutable environment state alike.  A
  slot whose deps compare equal to last step's reuses last step's built
  candidates (identical objects, not just equal values).
- A :class:`CandidateCache` holds, per agent, the previously built slots
  and assembles the full candidate sequence by concatenating cached and
  freshly built groups **in slot order**, so the result is element-for-
  element identical to a full enumeration.

Correctness contract (enforced by ``tests/core/test_hotpath_equivalence.py``
and ``tests/envs/test_candidate_cache.py``):

- Deps must be *complete*: anything that can change a slot's built
  candidates — a belief value, an inventory count, an object's holder —
  must appear in ``deps``.  The reference path (``REPRO_HOTPATH=0``)
  builds every slot every step, so any missing dep shows up as a
  byte-level divergence in the golden equivalence suite.
- Builders must be *pure* given their deps: no RNG draws, no environment
  mutation, and the same deps must always produce value-equal candidates.

When all slots hit, ``assemble`` returns the previous **tuple object**
unchanged.  Downstream caches key on that identity: the behaviour kernel
reuses its candidate scoreboard (:mod:`repro.llm.behavior`) and the prompt
builder reuses the rendered candidates section (:mod:`repro.llm.prompt`),
so an unchanged belief state costs a few tuple compares instead of an
enumeration, a re-scoring, and a re-render.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Sequence

from repro.core.types import Candidate, Subgoal


class CandidateSlot(NamedTuple):
    """One independently-cacheable group of candidates.

    ``key`` identifies the slot across steps (e.g. ``"fetch:mug"``),
    ``deps`` is the complete tuple of inputs the builder reads, and
    ``build`` produces the slot's candidates (possibly none) when deps
    changed.  Slots are cheap to construct — deps are plain value reads —
    so emitting the slot list every step costs far less than building
    every candidate.
    """

    key: str
    deps: tuple
    build: Callable[[], Sequence[Candidate]]


class CandidateCache:
    """Per-agent incremental assembly of environment candidate lists.

    One cache lives on each environment instance (episode-scoped, like
    the grid path memo) and serves every caller of ``env.candidates`` —
    the per-agent planning loop as well as centralized/hybrid paradigms
    that enumerate for the whole team each step.
    """

    __slots__ = ("_by_agent", "rebuilt_slots", "reused_slots")

    def __init__(self) -> None:
        # agent -> (slot_state, assembled) where slot_state maps
        # slot key -> (deps, built candidates tuple) and assembled is the
        # last returned tuple (with its slot-key order) for the fast path.
        self._by_agent: dict[str, tuple[dict[str, tuple[tuple, tuple]], tuple, tuple]] = {}
        #: Instrumentation for tests and profiling: how many slot builders
        #: ran vs. were served from cache since construction.
        self.rebuilt_slots = 0
        self.reused_slots = 0

    def assemble(self, agent: str, slots: Sequence[CandidateSlot]) -> tuple[Candidate, ...]:
        """Concatenate slot candidates, rebuilding only changed slots."""
        previous = self._by_agent.get(agent)
        if previous is not None and len(slots) == len(previous[2]):
            # All-hit fast path (the steady state): same slot keys in the
            # same order with equal deps hands back the identical tuple —
            # identity-keyed downstream caches hit — without assembling
            # anything.
            state, assembled, keys = previous
            for slot, key in zip(slots, keys):
                if slot.key != key or state[key][0] != slot.deps:
                    break
            else:
                self.reused_slots += len(keys)
                return assembled
        state = previous[0] if previous is not None else {}
        new_state: dict[str, tuple[tuple, tuple]] = {}
        groups: list[tuple[Candidate, ...]] = []
        for slot in slots:
            cached = state.get(slot.key)
            if cached is not None and cached[0] == slot.deps:
                built = cached[1]
                self.reused_slots += 1
                new_state[slot.key] = cached
            else:
                built = tuple(slot.build())
                self.rebuilt_slots += 1
                new_state[slot.key] = (slot.deps, built)
            if built:
                groups.append(built)
        assembled = tuple(candidate for group in groups for candidate in group)
        self._by_agent[agent] = (
            new_state,
            assembled,
            tuple(slot.key for slot in slots),
        )
        return assembled

    def reset(self) -> None:
        """Drop all cached state (tests; not needed in episodes)."""
        self._by_agent.clear()


def idle_candidates(utility: float) -> list[Candidate]:
    """Builder for the standard idle fallback candidate (a static slot)."""
    return [Candidate(subgoal=Subgoal(name="idle"), utility=utility)]


def build_all(slots: Sequence[CandidateSlot]) -> list[Candidate]:
    """Reference-path assembly: run every builder, exactly like the seed.

    Shared by ``Environment.candidates`` when the hot path is disabled so
    both paths enumerate through one decomposition — the cache can only
    reuse what this function would have built anyway.
    """
    return [candidate for slot in slots for candidate in slot.build()]
