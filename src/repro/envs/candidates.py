"""Incremental candidate enumeration keyed on belief deltas.

Environment ``candidates()`` is one of the dominant per-step costs of the
optimized episode loop (the ``planning/plan`` phase of ``REPRO_PROFILE``):
every macro step rebuilds the full list of :class:`~repro.core.types.Candidate`
/ :class:`~repro.core.types.Subgoal` objects from scratch, even though an
agent's beliefs — and therefore its affordances — change in only a few slots
per step.

This module provides the machinery for rebuilding *only what changed*:

- A :class:`CandidateSlot` is one independently-cacheable group of
  candidates (one goal object's fetch option, one room's explore option,
  the craft menu, ...).  Its ``deps`` tuple captures **every** input the
  builder reads — belief values and mutable environment state alike.  A
  slot whose deps compare equal to last step's reuses last step's built
  candidates (identical objects, not just equal values).
- A :class:`CandidateCache` holds, per agent, the previously built slots
  and assembles the full candidate sequence by concatenating cached and
  freshly built groups **in slot order**, so the result is element-for-
  element identical to a full enumeration.

Correctness contract (enforced by ``tests/core/test_hotpath_equivalence.py``
and ``tests/envs/test_candidate_cache.py``):

- Deps must be *complete*: anything that can change a slot's built
  candidates — a belief value, an inventory count, an object's holder —
  must appear in ``deps``.  The reference path (``REPRO_HOTPATH=0``)
  builds every slot every step, so any missing dep shows up as a
  byte-level divergence in the golden equivalence suite.
- Builders must be *pure* given their deps: no RNG draws, no environment
  mutation, and the same deps must always produce value-equal candidates.

When all slots hit, ``assemble`` returns the previous **tuple object**
unchanged.  Downstream caches key on that identity: the behaviour kernel
reuses its candidate scoreboard (:mod:`repro.llm.behavior`) and the prompt
builder reuses the rendered candidates section (:mod:`repro.llm.prompt`),
so an unchanged belief state costs a few tuple compares instead of an
enumeration, a re-scoring, and a re-render.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.core.errors import FaultKind
from repro.core.types import Candidate, Subgoal


class CandidateSlot(NamedTuple):
    """One independently-cacheable group of candidates.

    ``key`` identifies the slot across steps (e.g. ``"fetch:mug"``),
    ``deps`` is the complete tuple of inputs the builder reads, and
    ``build`` produces the slot's candidates (possibly none) when deps
    changed.  Slots are cheap to construct — deps are plain value reads —
    so emitting the slot list every step costs far less than building
    every candidate.
    """

    key: str
    deps: tuple
    build: Callable[[], Sequence[Candidate]]


class CandidateCache:
    """Per-agent incremental assembly of environment candidate lists.

    One cache lives on each environment instance (episode-scoped, like
    the grid path memo) and serves every caller of ``env.candidates`` —
    the per-agent planning loop as well as centralized/hybrid paradigms
    that enumerate for the whole team each step.
    """

    __slots__ = ("_by_agent", "rebuilt_slots", "reused_slots")

    def __init__(self) -> None:
        # agent -> (slot_state, assembled, keys, deps) where slot_state
        # maps slot key -> (deps, built candidates tuple), assembled is
        # the last returned tuple, and keys/deps mirror the slot order so
        # the all-hit check compares flat tuples without dict lookups.
        self._by_agent: dict[
            str, tuple[dict[str, tuple[tuple, tuple]], tuple, tuple, tuple]
        ] = {}
        #: Instrumentation for tests and profiling: how many slot builders
        #: ran vs. were served from cache since construction.
        self.rebuilt_slots = 0
        self.reused_slots = 0

    def assemble(self, agent: str, slots: Sequence[CandidateSlot]) -> tuple[Candidate, ...]:
        """Concatenate slot candidates, rebuilding only changed slots."""
        previous = self._by_agent.get(agent)
        if previous is not None and len(slots) == len(previous[2]):
            # All-hit fast path (the steady state): same slot keys in the
            # same order with equal deps hands back the identical tuple —
            # identity-keyed downstream caches hit — without assembling
            # anything.
            state, assembled, keys, deps = previous
            for slot, key, dep in zip(slots, keys, deps):
                if slot.key != key or slot.deps != dep:
                    break
            else:
                self.reused_slots += len(keys)
                return assembled
        state = previous[0] if previous is not None else {}
        new_state: dict[str, tuple[tuple, tuple]] = {}
        groups: list[tuple[Candidate, ...]] = []
        for slot in slots:
            cached = state.get(slot.key)
            if cached is not None and cached[0] == slot.deps:
                built = cached[1]
                self.reused_slots += 1
                new_state[slot.key] = cached
            else:
                built = tuple(slot.build())
                self.rebuilt_slots += 1
                new_state[slot.key] = (slot.deps, built)
            if built:
                groups.append(built)
        if len(groups) == 1:
            # A single contributing slot: hand back its cached tuple so a
            # dep-preserving rebuild of the *other* slots keeps identity.
            assembled = groups[0]
        else:
            assembled = tuple(candidate for group in groups for candidate in group)
        self._by_agent[agent] = (
            new_state,
            assembled,
            tuple(slot.key for slot in slots),
            tuple(slot.deps for slot in slots),
        )
        return assembled

    def reset(self) -> None:
        """Drop all cached state (tests; not needed in episodes)."""
        self._by_agent.clear()


def idle_candidates(utility: float) -> list[Candidate]:
    """Builder for the standard idle fallback candidate (a static slot)."""
    return [Candidate(subgoal=Subgoal(name="idle"), utility=utility)]


def build_all(slots: Sequence[CandidateSlot]) -> list[Candidate]:
    """Reference-path assembly: run every builder, exactly like the seed.

    Shared by ``Environment.candidates`` when the hot path is disabled so
    both paths enumerate through one decomposition — the cache can only
    reuse what this function would have built anyway.
    """
    return [candidate for slot in slots for candidate in slot.build()]


# --------------------------------------------------------------------- #
# Vectorized candidate features (hot-path phase 4)
# --------------------------------------------------------------------- #

#: Stable integer coding of ``Candidate.fault``: 0 = no fault, otherwise
#: ``1 + FaultKind`` enumeration index.  Arrays of these codes let the
#: behaviour kernel's scoreboard test fault membership with one numpy
#: compare instead of a per-candidate identity check.
FAULT_NONE = 0
FAULT_CODES: dict[FaultKind, int] = {
    kind: index + 1 for index, kind in enumerate(FaultKind)
}

#: The tokenizer is imported lazily: ``repro.llm.behavior`` imports this
#: module at class-definition time, so a top-level ``repro.llm`` import
#: here would close an import cycle through the two package __init__s.
#: Feature extraction only runs at episode time, long after both
#: packages finished importing, so the first call binds the real
#: function and every later call pays one module-global read.
_count_tokens: Callable[[str], int] | None = None


class CandidateFeatures(NamedTuple):
    """Columnar ("structure of arrays") view of one candidate sequence.

    One pass over the candidates fills numpy columns for everything the
    planning hot path scores or renders per candidate:

    - ``utilities`` / ``feasible`` / ``fault_codes`` feed the behaviour
      kernel's scoreboard (:mod:`repro.llm.behavior`), which derives its
      clean/tie/fault pools as boolean-mask index arrays instead of
      re-walking the candidates once per pool;
    - ``subgoals`` supports the only per-candidate predicate that cannot
      be precomputed (blacklist membership — the blacklist arrives with
      the decision request, not with the candidates);
    - ``described`` / ``desc_tokens`` / ``desc_tokens_total`` feed the
      prompt builder's candidates section (:mod:`repro.llm.prompt`),
      which joins prerendered lines and adds pretotaled token counts
      instead of describing and re-counting per candidate.

    Features are a pure function of the candidate values — extraction
    consumes no randomness and mutates nothing — so both scoring paths
    stay byte-identical to the scalar reference implementation.
    """

    utilities: np.ndarray
    feasible: np.ndarray
    fault_codes: np.ndarray
    subgoals: tuple[Subgoal, ...]
    described: tuple[str, ...]
    desc_tokens: np.ndarray
    desc_tokens_total: int


def extract_features(candidates: Sequence[Candidate]) -> CandidateFeatures:
    """One-pass columnar extraction over ``candidates``."""
    global _count_tokens
    if _count_tokens is None:
        from repro.llm.tokenizer import count_tokens

        _count_tokens = count_tokens
    count = _count_tokens
    codes = FAULT_CODES
    # Comprehension-per-column beats element-wise ndarray assignment for
    # the small candidate sets the environments enumerate: each column is
    # one C-speed pass plus one bulk conversion.
    subgoals = tuple(candidate.subgoal for candidate in candidates)
    described = tuple(subgoal.describe() for subgoal in subgoals)
    desc_token_list = [count(text) for text in described]
    return CandidateFeatures(
        utilities=np.array(
            [candidate.utility for candidate in candidates], dtype=np.float64
        ),
        feasible=np.array(
            [candidate.feasible for candidate in candidates], dtype=bool
        ),
        fault_codes=np.array(
            [
                FAULT_NONE if candidate.fault is None else codes[candidate.fault]
                for candidate in candidates
            ],
            dtype=np.int8,
        ),
        subgoals=subgoals,
        described=described,
        desc_tokens=np.array(desc_token_list, dtype=np.int64),
        desc_tokens_total=sum(desc_token_list),
    )


class _FeatureMemo:
    """Bounded identity-keyed memo: candidate tuple -> features.

    The environment candidate cache returns the same tuple object while
    an agent's affordances are unchanged, so features can be reused by
    object identity (id lookup plus an ``is`` check).  Entries pin their
    key tuple — ids cannot be recycled while cached — and features are
    immutable, so sharing across the scoreboard and the prompt builder
    is safe.  A lock guards the map for the suite's threaded
    ``--concurrent-sections`` mode.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._entries: OrderedDict[
            int, tuple[tuple[Candidate, ...], CandidateFeatures]
        ] = OrderedDict()
        self._capacity = capacity
        self._lock = threading.Lock()

    def get(self, key_obj: tuple[Candidate, ...]) -> CandidateFeatures | None:
        with self._lock:
            entry = self._entries.get(id(key_obj))
            if entry is None or entry[0] is not key_obj:
                return None
            self._entries.move_to_end(id(key_obj))
            return entry[1]

    def put(self, key_obj: tuple[Candidate, ...], features: CandidateFeatures) -> None:
        with self._lock:
            self._entries[id(key_obj)] = (key_obj, features)
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)


_FEATURES = _FeatureMemo()


def candidate_features(candidates: tuple[Candidate, ...]) -> CandidateFeatures:
    """Features for a (cache-stable) candidate tuple, memoized by identity.

    The first consumer of a new tuple — the prompt builder assembles
    before the kernel scores — pays the single extraction pass; every
    other consumer, and every later step that reuses the tuple, gets the
    cached columns.
    """
    features = _FEATURES.get(candidates)
    if features is None:
        features = extract_features(candidates)
        _FEATURES.put(candidates, features)
    return features
