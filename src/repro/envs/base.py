"""Abstract environment interface for all task substrates.

Every environment family (household, transport, cuisine, boxworld,
mineworld, kitchen, tabletop) implements this contract.  Key design points:

- **Partial observability**: ``visible_facts(agent)`` returns only what the
  agent could perceive from its current position; perception noise is
  applied on top by the sensing module.
- **Belief-conditioned affordances**: ``candidates(agent, beliefs)``
  enumerates subgoal options against the agent's *beliefs* (not ground
  truth), so missing memory manifests as exploration candidates and stale
  memory as doomed-but-plausible options.
- **Grounded execution**: ``execute(agent, subgoal, rng)`` runs real
  low-level planning (A*/RRT/action-list/grasp), mutates the world, and
  reports primitive counts, compute cost, and actuation time so the
  latency ledger matches the paper's execution-module accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core import hotpath
from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Observation, Subgoal, TaskSpec
from repro.envs.candidates import CandidateCache, CandidateSlot, build_all
from repro.planners.costmodel import ComputeCost, ZERO_COST


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of lowering + executing one subgoal in the world."""

    success: bool
    primitive_count: int
    compute: ComputeCost
    actuation_seconds: float
    reason: str = ""
    progress_delta: float = 0.0

    @classmethod
    def failure(cls, reason: str, actuation_seconds: float = 0.0) -> "ExecutionOutcome":
        return cls(
            success=False,
            primitive_count=0,
            compute=ZERO_COST,
            actuation_seconds=actuation_seconds,
            reason=reason,
        )


@dataclass
class EnvState:
    """Bookkeeping shared by all environments."""

    step_index: int = 0
    claims: dict[str, object] = field(default_factory=dict)  # resource -> holder(s)


class Environment(abc.ABC):
    """Base class for task environments.

    Subclasses populate ``agents`` and goal structures in ``__init__`` from
    the :class:`~repro.core.types.TaskSpec` and a seeded generator, and
    implement the abstract affordance/execution hooks.
    """

    name: str = "abstract"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        self.task = task
        self.rng = rng
        self.agents: list[str] = [f"agent_{i}" for i in range(task.n_agents)]
        self.state = EnvState()
        # Episode-scoped incremental candidate cache (hot path only; see
        # repro.envs.candidates).  Environments that decompose their
        # enumeration into slots get per-slot reuse; the rest fall back
        # to full enumeration through their own ``candidates`` override.
        self._candidate_cache: CandidateCache | None = (
            CandidateCache() if hotpath.enabled() else None
        )
        # Per-step position staging (hot path only): agent positions only
        # change when an agent executes, and every paradigm loop perceives
        # all agents before anyone acts, so the O(n^2) position reads of
        # the observation pass can share one lookup per agent per step.
        # Cleared on tick() and by the execution module after every
        # execute (covering replans and custom loops).
        self._position_cache: dict[str, str] | None = (
            {} if hotpath.enabled() else None
        )
        # candidates() is no longer @abstractmethod (the base class now
        # drives candidate_slots() when provided), so re-create the
        # construction-time failure a forgotten affordance hook used to
        # get from abc.
        if (
            type(self).candidates is Environment.candidates
            and type(self).candidate_slots is Environment.candidate_slots
        ):
            raise TypeError(
                f"{type(self).__name__} must override candidates() or "
                "implement candidate_slots()"
            )

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #

    def tick(self) -> None:
        """Advance environment dynamics by one macro step.

        Called once per macro step before agents act; also clears
        per-step resource claims used for conflict detection.
        """
        self.state.step_index += 1
        self.state.claims.clear()
        if self._position_cache:
            self._position_cache.clear()

    def claim(self, resource: str, agent: str) -> bool:
        """Claim a contended resource for this macro step.

        Returns False when another agent already holds it — the standard
        way simultaneous object/station grabs turn into wasted steps.
        """
        holder = self.state.claims.setdefault(resource, agent)
        return holder == agent

    def claim_slot(self, resource: str, agent: str, capacity: int) -> bool:
        """Claim one of ``capacity`` slots on a shared resource.

        Models physical congestion: a room or station only fits so many
        robots per step, so large teams start blocking each other — the
        crowding component of the paper's scalability decline (Sec. VI).
        """
        key = f"slots:{resource}"
        holders = self.state.claims.setdefault(key, [])  # type: ignore[assignment]
        if agent in holders:
            return True
        if len(holders) >= capacity:
            return False
        holders.append(agent)
        return True

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def visible_facts(self, agent: str) -> list[Fact]:
        """Ground-truth facts perceivable from the agent's position."""

    @abc.abstractmethod
    def agent_position(self, agent: str) -> str:
        """Human-readable position label for prompts."""

    def position_of(self, agent: str) -> str:
        """:meth:`agent_position`, served from the per-step staging cache.

        Use this accessor on read paths (perception, observation
        assembly); it is exactly ``agent_position`` on the reference path
        and one lookup per agent per step on the hot path.
        """
        cache = self._position_cache
        if cache is None:
            return self.agent_position(agent)
        position = cache.get(agent)
        if position is None:
            position = self.agent_position(agent)
            cache[agent] = position
        return position

    def invalidate_positions(self) -> None:
        """Drop staged positions after world mutation (execution module)."""
        if self._position_cache:
            self._position_cache.clear()

    def observation(self, agent: str, facts: tuple[Fact, ...]) -> Observation:
        """Wrap (already noise-filtered) facts into an observation."""
        if self._position_cache is None:
            # Reference path: the seed's per-comparison position reads.
            visible_agents = tuple(
                other
                for other in self.agents
                if other != agent
                and self.agent_position(other) == self.agent_position(agent)
            )
            return Observation(
                agent=agent,
                step=self.state.step_index,
                position=self.agent_position(agent),
                facts=facts,
                visible_agents=visible_agents,
            )
        position = self.position_of(agent)
        visible_agents = tuple(
            other
            for other in self.agents
            if other != agent and self.position_of(other) == position
        )
        return Observation(
            agent=agent,
            step=self.state.step_index,
            position=position,
            facts=facts,
            visible_agents=visible_agents,
        )

    def location_vocabulary(self) -> list[str]:
        """Plausible location labels, used as mislabel distractors."""
        return []

    # ------------------------------------------------------------------ #
    # Affordances and execution
    # ------------------------------------------------------------------ #

    def candidates(self, agent: str, beliefs: Beliefs) -> Sequence[Candidate]:
        """Enumerate subgoal options given the agent's beliefs.

        Implementations should include (a) productive options with
        ground-truth utilities, (b) an explore/idle fallback, and (c) a
        few infeasible/hallucinated options as fault-injection targets.

        Environments either override this directly (seed style, full
        enumeration every call) or implement :meth:`candidate_slots` and
        inherit this driver: on the hot path changed slots are rebuilt
        and unchanged slots reuse last step's candidate objects; on the
        reference path every slot is built fresh, so both paths produce
        element-for-element identical sequences.
        """
        slots = self.candidate_slots(agent, beliefs)
        if slots is None:
            raise NotImplementedError(
                f"{type(self).__name__} must override candidates() or "
                "implement candidate_slots()"
            )
        cache = self._candidate_cache
        if cache is not None:
            return cache.assemble(agent, slots)
        return build_all(slots)

    def candidate_slots(
        self, agent: str, beliefs: Beliefs
    ) -> list[CandidateSlot] | None:
        """Slot decomposition of :meth:`candidates` (``None`` = not adopted).

        Each :class:`~repro.envs.candidates.CandidateSlot` must declare
        *complete* deps — every belief value and every piece of mutable
        environment state its builder reads — and builders must be pure.
        See :mod:`repro.envs.candidates` for the full contract.
        """
        return None

    @abc.abstractmethod
    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        """Lower ``subgoal`` to primitives, run them, mutate the world."""

    @abc.abstractmethod
    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        """Primitive count the subgoal would need (for no-exec ablation)."""

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def goal_progress(self) -> float:
        """Fraction of the task completed, in [0, 1]."""

    def is_success(self) -> bool:
        return self.goal_progress() >= 1.0 - 1e-9

    @abc.abstractmethod
    def describe_task(self) -> str:
        """Natural-language task description for prompt construction."""

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def hallucination_candidates(self, count: int = 2) -> list[Candidate]:
        """Standard fault-injection candidates naming non-existent objects."""
        from repro.core.errors import FaultKind

        return [
            Candidate(
                subgoal=Subgoal(name="fetch", target=f"imaginary_object_{index}"),
                utility=0.0,
                feasible=False,
                fault=FaultKind.HALLUCINATION,
            )
            for index in range(count)
        ]
