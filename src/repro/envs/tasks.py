"""Task construction helpers: default horizons and TaskSpec factories.

The horizon is the paper's L_max — the macro-step budget after which an
episode counts as failed.  Defaults are sized so that a healthy system
finishes with margin while ablated systems (no memory / no reflection /
no execution) visibly saturate, matching the dynamic range of Fig. 3.
"""

from __future__ import annotations

from typing import Any

from repro.core.types import TaskSpec, validate_difficulty

#: Default L_max per (environment, difficulty).
DEFAULT_HORIZONS: dict[str, dict[str, int]] = {
    "household": {"easy": 40, "medium": 55, "hard": 48},
    "transport": {"easy": 35, "medium": 42, "hard": 40},
    "cuisine": {"easy": 38, "medium": 58, "hard": 80},
    "boxworld": {"easy": 32, "medium": 48, "hard": 45},
    "mineworld": {"easy": 50, "medium": 72, "hard": 70},
    "kitchen": {"easy": 20, "medium": 38, "hard": 60},
    "tabletop": {"easy": 26, "medium": 36, "hard": 34},
}


def default_horizon(env_name: str, difficulty: str) -> int:
    try:
        return DEFAULT_HORIZONS[env_name][validate_difficulty(difficulty)]
    except KeyError:
        raise KeyError(f"no default horizon for environment {env_name!r}") from None


def make_task(
    env_name: str,
    difficulty: str = "medium",
    n_agents: int = 1,
    seed: int = 0,
    horizon: int | None = None,
    **params: Any,
) -> TaskSpec:
    """Build a :class:`TaskSpec` with sensible defaults.

    >>> task = make_task("household", "easy", seed=7)
    >>> task.horizon == DEFAULT_HORIZONS["household"]["easy"]
    True
    """
    validate_difficulty(difficulty)
    if n_agents < 1:
        raise ValueError(f"n_agents must be >= 1: {n_agents}")
    return TaskSpec(
        env_name=env_name,
        difficulty=difficulty,
        n_agents=n_agents,
        horizon=horizon if horizon is not None else default_horizon(env_name, difficulty),
        seed=seed,
        params=dict(params),
    )
