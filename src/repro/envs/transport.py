"""Transport environment: TDW-MAT (ThreeDWorld Multi-Agent Transport) substitute.

Agents cooperatively carry scattered target objects to a goal zone.  Each
agent can hold two objects at once (TDW-MAT's hands), so efficient play
batches pickups before returning — a plan-quality signal the simulated
LLM's faults degrade.  Contention (two agents heading for the same object)
and exploration under partial observability drive the cooperation effects
the paper measures on CoELA.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.errors import EnvironmentError_
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.candidates import CandidateSlot, idle_candidates
from repro.envs.grid import Cell, RoomGrid, build_row_of_rooms
from repro.planners.costmodel import ComputeCost


def _deposit_option(n_carrying: int) -> list[Candidate]:
    # Returning pays off more the fuller the hands are.
    return [
        Candidate(
            subgoal=Subgoal(name="deposit"),
            utility=0.7 + 0.3 * (n_carrying / CARRY_CAPACITY),
        )
    ]


def _pickup_option(obj_name: str, offered: bool) -> list[Candidate]:
    if not offered:
        return []
    return [Candidate(subgoal=Subgoal(name="pickup", target=obj_name), utility=0.85)]


def _infeasible_pickup(first_pending: str | None) -> list[Candidate]:
    if first_pending is None:
        return []
    return [
        Candidate(
            subgoal=Subgoal(name="pickup", target=first_pending),
            utility=0.0,
            feasible=False,
        )
    ]


def _explore_option(room_name: str, visited: bool) -> list[Candidate]:
    return [
        Candidate(
            subgoal=Subgoal(name="explore", target=room_name),
            utility=0.12 if visited else 0.42,
        )
    ]


MOVE_SECONDS = 0.4
PICK_SECONDS = 1.2
DROP_SECONDS = 0.9
CARRY_CAPACITY = 2
#: Robots that fit in one room per step before congestion blocks entry.
ROOM_CAPACITY = 3

_ROOM_NAMES = ["goal_zone", "hall", "office", "lounge", "storage", "workshop"]
_OBJECT_PREFIX = ["box", "bag", "crate", "parcel", "case"]

_DIFFICULTY_SETTINGS = {
    "easy": {"rooms": 4, "targets": 6},
    "medium": {"rooms": 5, "targets": 12},
    "hard": {"rooms": 6, "targets": 16},
}


@dataclass
class _TransportObject:
    name: str
    cell: Cell
    room: str
    held_by: str = ""
    delivered: bool = False


@dataclass
class _TransportAgent:
    name: str
    cell: Cell
    carrying: list[str]


class TransportEnv(Environment):
    """See module docstring."""

    name = "transport"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        settings = _DIFFICULTY_SETTINGS[task.difficulty]
        self.grid: RoomGrid = build_row_of_rooms(_ROOM_NAMES[: settings["rooms"]])
        spawn_rooms = self.grid.room_names()[1:]  # not in the goal zone

        # Larger crews haul proportionally more cargo (the multi-agent
        # transport benchmarks scale the task with the team).
        n_targets = settings["targets"] + 2 * max(0, task.n_agents - 2)
        self.objects: dict[str, _TransportObject] = {}
        for index in range(n_targets):
            name = f"{_OBJECT_PREFIX[index % len(_OBJECT_PREFIX)]}_{index}"
            room = spawn_rooms[int(rng.integers(len(spawn_rooms)))]
            self.objects[name] = _TransportObject(
                name=name, cell=self.grid.random_cell_in(room, rng), room=room
            )

        self._agents: dict[str, _TransportAgent] = {
            agent: _TransportAgent(
                name=agent,
                cell=self.grid.random_cell_in("goal_zone", rng),
                carrying=[],
            )
            for agent in self.agents
        }

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        cell = self._agents[agent].cell
        return self.grid.room_of(cell) or f"cell_{cell[0]}_{cell[1]}"

    def visible_facts(self, agent: str) -> list[Fact]:
        room = self.agent_position(agent)
        step = self.state.step_index
        facts = [Fact(subject=room, relation="visited", value="true", step=step)]
        for obj in self.objects.values():
            if obj.held_by == agent:
                facts.append(
                    Fact(subject=obj.name, relation="held_by", value=agent, step=step)
                )
            elif obj.delivered:
                if room == "goal_zone":
                    facts.append(
                        Fact(subject=obj.name, relation="delivered", value="true", step=step)
                    )
            elif not obj.held_by and obj.room == room:
                facts.append(
                    Fact(subject=obj.name, relation="located_in", value=room, step=step)
                )
                # Retract any stale held_by belief (see household.py).
                facts.append(
                    Fact(subject=obj.name, relation="held_by", value="nobody", step=step)
                )
        return sorted(facts, key=lambda fact: (fact.subject, fact.relation))

    def static_facts(self) -> list[Fact]:
        return [Fact(subject="goal_zone", relation="is", value="the drop off area")]

    def location_vocabulary(self) -> list[str]:
        return self.grid.room_names()

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidate_slots(self, agent: str, beliefs: Beliefs) -> list[CandidateSlot]:
        me = self._agents[agent]
        n_carrying = len(me.carrying)
        slots: list[CandidateSlot] = []

        if me.carrying:
            slots.append(
                CandidateSlot("deposit", (n_carrying,), partial(_deposit_option, n_carrying))
            )
        if n_carrying < CARRY_CAPACITY:
            for obj in self.objects.values():
                offered = (
                    not obj.delivered
                    and not obj.held_by
                    and bool(beliefs.value(obj.name, "located_in"))
                )
                slots.append(
                    CandidateSlot(
                        f"pickup:{obj.name}",
                        (offered,),
                        partial(_pickup_option, obj.name, offered),
                    )
                )
        else:
            first_pending = next(
                (
                    obj.name
                    for obj in self.objects.values()
                    if not obj.delivered and not obj.held_by
                ),
                None,
            )
            slots.append(
                CandidateSlot(
                    "pickup_full",
                    (first_pending,),
                    partial(_infeasible_pickup, first_pending),
                )
            )

        for room_name in self.grid.room_names()[1:]:
            visited = beliefs.value(room_name, "visited") == "true"
            slots.append(
                CandidateSlot(
                    f"explore:{room_name}",
                    (visited,),
                    partial(_explore_option, room_name, visited),
                )
            )

        slots.append(CandidateSlot("idle", (), partial(idle_candidates, 0.02)))
        slots.append(CandidateSlot("hallucination", (), self.hallucination_candidates))
        return slots

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        handler = {
            "explore": self._do_explore,
            "pickup": self._do_pickup,
            "deposit": self._do_deposit,
            "idle": self._do_idle,
        }.get(subgoal.name)
        if handler is None:
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        return handler(agent, subgoal, rng)

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        me = self._agents[agent]
        if subgoal.name == "pickup" and subgoal.target in self.objects:
            obj = self.objects[subgoal.target]
            return 1 + abs(me.cell[0] - obj.cell[0]) + abs(me.cell[1] - obj.cell[1])
        if subgoal.name == "deposit":
            target = self.grid.room_named("goal_zone").center()
            return 1 + abs(me.cell[0] - target[0]) + abs(me.cell[1] - target[1])
        if subgoal.name == "explore" and subgoal.target in self.grid.room_names():
            target = self.grid.room_named(subgoal.target).center()
            return max(1, abs(me.cell[0] - target[0]) + abs(me.cell[1] - target[1]))
        return 1

    def _navigate(
        self, me: _TransportAgent, goal_cell: Cell
    ) -> tuple[int, ComputeCost, float]:
        result = self.grid.path(me.cell, goal_cell)
        if not result.found:
            raise EnvironmentError_(f"no path {me.cell} -> {goal_cell}")
        me.cell = goal_cell
        return (
            result.cost,
            ComputeCost(astar_expansions=result.expansions),
            result.cost * MOVE_SECONDS,
        )

    def _do_explore(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.target not in self.grid.room_names():
            return ExecutionOutcome.failure(f"unknown room {subgoal.target!r}")
        if not self.claim_slot(f"room:{subgoal.target}", agent, ROOM_CAPACITY):
            return ExecutionOutcome.failure(
                "room congested", actuation_seconds=1.0
            )
        me = self._agents[agent]
        moves, compute, actuation = self._navigate(
            me, self.grid.random_cell_in(subgoal.target, rng)
        )
        return ExecutionOutcome(
            success=True,
            primitive_count=max(1, moves),
            compute=compute,
            actuation_seconds=actuation,
        )

    def _do_pickup(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        obj = self.objects.get(subgoal.target)
        if obj is None:
            return ExecutionOutcome.failure(f"no such object {subgoal.target!r}")
        me = self._agents[agent]
        if len(me.carrying) >= CARRY_CAPACITY:
            return ExecutionOutcome.failure("hands full")
        if obj.delivered or obj.held_by:
            return ExecutionOutcome.failure("object unavailable")
        if not self.claim_slot(f"room:{obj.room}", agent, ROOM_CAPACITY):
            return ExecutionOutcome.failure(
                "room congested", actuation_seconds=1.0
            )
        if not self.claim(f"object:{obj.name}", agent):
            return ExecutionOutcome.failure("object claimed by teammate")
        moves, compute, actuation = self._navigate(me, obj.cell)
        obj.held_by = agent
        me.carrying.append(obj.name)
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 1,
            compute=compute,
            actuation_seconds=actuation + PICK_SECONDS,
        )

    def _do_deposit(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        me = self._agents[agent]
        if not me.carrying:
            return ExecutionOutcome.failure("not carrying anything")
        moves, compute, actuation = self._navigate(
            me, self.grid.random_cell_in("goal_zone", rng)
        )
        delivered = 0
        for obj_name in list(me.carrying):
            obj = self.objects[obj_name]
            obj.held_by = ""
            obj.delivered = True
            obj.room = "goal_zone"
            obj.cell = me.cell
            delivered += 1
        me.carrying.clear()
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + delivered,
            compute=compute,
            actuation_seconds=actuation + delivered * DROP_SECONDS,
            progress_delta=delivered / max(1, len(self.objects)),
        )

    def _do_idle(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        return ExecutionOutcome(
            success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
        )

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        delivered = sum(1 for obj in self.objects.values() if obj.delivered)
        return delivered / max(1, len(self.objects))

    def describe_task(self) -> str:
        return (
            f"Transport task: carry all {len(self.objects)} target objects "
            "to the goal zone. Each agent can hold two objects."
        )
