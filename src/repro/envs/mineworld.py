"""Mineworld environment: Minecraft / MineRL substitute.

An open-world crafting game with the classic tool-progression dependency
DAG (logs → planks → wooden pickaxe → cobblestone → stone pickaxe → iron →
diamond pickaxe).  Resource deposits live in areas that must be explored
first, mining requires the right tool tier, and crafting happens at the
base camp — so the workload exercises exactly what JARVIS-1/MP5/DEPS
stress: long-horizon dependency reasoning, exploration memory, and typed
failure modes (mining without the tool, crafting without ingredients,
pursuing side-branches of the tech tree).

Difficulty sets the goal item: ``easy`` → stone_pickaxe, ``medium`` →
iron_pickaxe, ``hard`` → diamond_pickaxe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.candidates import CandidateSlot, idle_candidates
from repro.planners.costmodel import ComputeCost

TRAVEL_SECONDS_PER_AREA = 2.2
GATHER_SECONDS = 3.0
CRAFT_SECONDS = 1.2
#: Chance that one roaming step locates an unremembered deposit.
SEARCH_FIND_PROBABILITY = 0.55

AREAS = ("base", "forest", "quarry", "cave", "deep_cave")

#: Which area hosts each gatherable resource.
RESOURCE_AREAS = {
    "log": "forest",
    "cobblestone": "quarry",
    "iron_ore": "cave",
    "diamond": "deep_cave",
}

#: Tool required to gather each resource ("" = bare hands).
GATHER_TOOL = {
    "log": "",
    "cobblestone": "wooden_pickaxe",
    "iron_ore": "stone_pickaxe",
    "diamond": "iron_pickaxe",
}

#: Units produced per successful gather.
GATHER_YIELD = {"log": 2, "cobblestone": 2, "iron_ore": 1, "diamond": 1}

#: Crafting recipes: item -> ingredient counts.  Crafting happens at base.
RECIPES: dict[str, dict[str, int]] = {
    "planks": {"log": 1},
    "stick": {"planks": 1},
    "crafting_table": {"planks": 2},
    "wooden_pickaxe": {"stick": 2, "planks": 2, "crafting_table": 0},
    "furnace": {"cobblestone": 4, "crafting_table": 0},
    "stone_pickaxe": {"stick": 2, "cobblestone": 2, "crafting_table": 0},
    "iron_ingot": {"iron_ore": 1, "log": 1, "furnace": 0},
    "iron_pickaxe": {"stick": 2, "iron_ingot": 2, "crafting_table": 0},
    "diamond_pickaxe": {"stick": 2, "diamond": 2, "crafting_table": 0},
}

#: Items that are stations: required present (count 0 entries) not consumed.
STATIONS = frozenset({"crafting_table", "furnace"})

GOALS_BY_DIFFICULTY = {
    "easy": "stone_pickaxe",
    "medium": "iron_pickaxe",
    "hard": "diamond_pickaxe",
}

#: Belief slots the candidate menu reads (candidate-cache dep keys).
_DEPOSIT_KEYS = tuple(
    (f"{resource}_deposit", "located_in") for resource in RESOURCE_AREAS
)
_AREA_VISITED_KEYS = tuple((area, "visited") for area in AREAS[1:])


def _explore_options(visited_values: tuple[str | None, ...]) -> list[Candidate]:
    return [
        Candidate(
            subgoal=Subgoal(name="explore", target=area),
            utility=0.1 if value == "true" else 0.45,
        )
        for area, value in zip(AREAS[1:], visited_values)
    ]


def _return_option(away: bool) -> list[Candidate]:
    if not away:
        return []
    return [Candidate(subgoal=Subgoal(name="explore", target="base"), utility=0.3)]


def requirement_closure(goal: str) -> set[str]:
    """All craftable items transitively needed to build ``goal``.

    Follows both recipe ingredients and *tool* dependencies: mining
    cobblestone needs a wooden pickaxe even though no recipe lists one,
    so the closure of ``stone_pickaxe`` includes ``wooden_pickaxe``.
    """
    needed: set[str] = set()
    frontier = [goal]
    while frontier:
        item = frontier.pop()
        if item in RECIPES:
            if item in needed:
                continue
            needed.add(item)
            frontier.extend(RECIPES[item])
        else:
            tool = GATHER_TOOL.get(item, "")
            if tool and tool not in needed:
                frontier.append(tool)
    return needed


@dataclass
class _Player:
    name: str
    area: str = "base"
    inventory: dict[str, int] = field(default_factory=dict)

    def count(self, item: str) -> int:
        return self.inventory.get(item, 0)

    def add(self, item: str, amount: int) -> None:
        self.inventory[item] = self.count(item) + amount

    def remove(self, item: str, amount: int) -> None:
        remaining = self.count(item) - amount
        if remaining < 0:
            raise ValueError(f"cannot remove {amount} {item}, have {self.count(item)}")
        if remaining == 0:
            self.inventory.pop(item, None)
        else:
            self.inventory[item] = remaining


class MineWorldEnv(Environment):
    """See module docstring."""

    name = "mineworld"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        self.goal_item: str = str(
            task.params.get("goal_item", GOALS_BY_DIFFICULTY[task.difficulty])
        )
        if self.goal_item not in RECIPES:
            raise ValueError(f"goal item {self.goal_item!r} is not craftable")
        self.needed_items = requirement_closure(self.goal_item)
        # Deposit areas are shuffled per episode so exploration is real:
        # the agent knows area names but not which resources they host.
        areas = list(AREAS[1:])
        rng.shuffle(areas)
        self.deposit_area: dict[str, str] = {
            resource: areas[index % len(areas)]
            for index, resource in enumerate(RESOURCE_AREAS)
        }
        self._players: dict[str, _Player] = {
            agent: _Player(name=agent) for agent in self.agents
        }
        self._area_index = {area: index for index, area in enumerate(AREAS)}

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        return self._players[agent].area

    def visible_facts(self, agent: str) -> list[Fact]:
        player = self._players[agent]
        step = self.state.step_index
        facts = [Fact(subject=player.area, relation="visited", value="true", step=step)]
        for resource, area in self.deposit_area.items():
            if area == player.area:
                facts.append(
                    Fact(
                        subject=f"{resource}_deposit",
                        relation="located_in",
                        value=area,
                        step=step,
                    )
                )
        for item, count in sorted(player.inventory.items()):
            facts.append(
                Fact(subject=item, relation="inventory_count", value=str(count), step=step)
            )
        return facts

    def static_facts(self) -> list[Fact]:
        facts = []
        for item, recipe in sorted(RECIPES.items()):
            ingredients = " and ".join(
                f"{count} {name}" if count else f"a {name}"
                for name, count in sorted(recipe.items())
            )
            facts.append(Fact(subject=item, relation="crafted_from", value=ingredients))
        return facts

    def location_vocabulary(self) -> list[str]:
        return list(AREAS)

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def _have(self, player: _Player, item: str) -> int:
        return player.count(item)

    def _craftable(self, player: _Player, item: str) -> bool:
        """Ingredients available?  (Execution travels to base by itself.)"""
        recipe = RECIPES.get(item)
        if recipe is None:
            return False
        for ingredient, count in recipe.items():
            if count == 0:
                if player.count(ingredient) < 1:
                    return False
            elif player.count(ingredient) < count:
                return False
        return True

    def _next_needed_craft(self, player: _Player) -> list[str]:
        """Craftable-now items that advance toward the goal."""
        return sorted(
            item
            for item in self.needed_items
            if self._item_deficit(player, item) > 0 and self._craftable(player, item)
        )

    def _item_deficit(self, player: _Player, item: str) -> int:
        """How many more of ``item`` the tech tree still requires."""
        return _DeficitCalculator(self, player).item_deficit(item)

    def candidate_slots(self, agent: str, beliefs: Beliefs) -> list[CandidateSlot]:
        player = self._players[agent]
        # The craft/gather menu is a pure function of the player's
        # inventory (deficits, craftability, tool tiers) and the believed
        # deposit locations; one slot covers both loops so a rebuild
        # constructs a single demand calculator, exactly like the seed.
        inventory_state = tuple(sorted(player.inventory.items()))
        deposits = beliefs.values_at(_DEPOSIT_KEYS)
        slots = [
            CandidateSlot(
                "economy",
                (inventory_state, deposits),
                partial(self._economy_options, player, deposits),
            )
        ]
        visited = beliefs.values_at(_AREA_VISITED_KEYS)
        slots.append(
            CandidateSlot("explore", (visited,), partial(_explore_options, visited))
        )
        away = player.area != "base"
        slots.append(CandidateSlot("return_base", (away,), partial(_return_option, away)))
        slots.append(CandidateSlot("idle", (), partial(idle_candidates, 0.02)))
        slots.append(CandidateSlot("hallucination", (), self.hallucination_candidates))
        return slots

    def _economy_options(
        self, player: _Player, deposits: tuple[str | None, ...]
    ) -> list[Candidate]:
        calculator = _DeficitCalculator(self, player)
        options: list[Candidate] = []

        for item in sorted(RECIPES):
            craftable = self._craftable(player, item)
            needed = item in self.needed_items and calculator.item_deficit(item) > 0
            if craftable and needed:
                utility = 1.0 if item == self.goal_item else 0.9
                options.append(
                    Candidate(subgoal=Subgoal(name="craft", target=item), utility=utility)
                )
            elif craftable:
                options.append(  # side-branch bait: feasible but useless
                    Candidate(subgoal=Subgoal(name="craft", target=item), utility=0.15)
                )
            elif needed:
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="craft", target=item),
                        utility=0.0,
                        feasible=False,
                    )
                )

        for resource, known_area in zip(RESOURCE_AREAS, deposits):
            deficit = calculator.resource_deficit(resource)
            tool = GATHER_TOOL[resource]
            has_tool = not tool or player.count(tool) >= 1
            if known_area is None:
                # Deposit location unknown: a search-gather is still
                # possible (roam until the deposit is found, then mine),
                # at a lower utility than a remembered location.  This is
                # how memory-less systems (MP5, DEPS) make progress, and
                # why memory saves steps rather than being a hard gate.
                if deficit > 0 and has_tool:
                    options.append(
                        Candidate(
                            subgoal=Subgoal(
                                name="gather", target=resource, destination="search"
                            ),
                            utility=0.6,
                        )
                    )
                continue
            if deficit > 0 and has_tool:
                options.append(
                    Candidate(subgoal=Subgoal(name="gather", target=resource), utility=0.8)
                )
            elif deficit > 0:
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="gather", target=resource),
                        utility=0.0,
                        feasible=False,  # lacking the tool tier
                    )
                )
            elif has_tool:
                # Over-gathering bait: feasible but pointless.
                options.append(
                    Candidate(subgoal=Subgoal(name="gather", target=resource), utility=0.1)
                )
        return options

    def _resource_deficit(self, player: _Player, resource: str) -> int:
        return _DeficitCalculator(self, player).resource_deficit(resource)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        handler = {
            "explore": self._do_explore,
            "gather": self._do_gather,
            "craft": self._do_craft,
            "idle": self._do_idle,
        }.get(subgoal.name)
        if handler is None:
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        return handler(agent, subgoal, rng)

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        if subgoal.name == "gather":
            return 6
        if subgoal.name == "craft":
            return 3
        if subgoal.name == "explore":
            return 4
        return 1

    def _travel(self, player: _Player, area: str) -> tuple[int, float]:
        distance = abs(self._area_index[player.area] - self._area_index[area])
        player.area = area
        return distance, distance * TRAVEL_SECONDS_PER_AREA

    def _do_explore(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.target not in self._area_index:
            return ExecutionOutcome.failure(f"unknown area {subgoal.target!r}")
        player = self._players[agent]
        moves, travel_time = self._travel(player, subgoal.target)
        return ExecutionOutcome(
            success=True,
            primitive_count=max(1, moves * 2),
            compute=ComputeCost(actionlist_actions=max(1, moves)),
            actuation_seconds=travel_time + 1.0,
        )

    def _do_gather(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        resource = subgoal.target
        if resource not in RESOURCE_AREAS:
            return ExecutionOutcome.failure(f"unknown resource {resource!r}")
        player = self._players[agent]
        area = self.deposit_area[resource]
        if subgoal.destination == "search":
            # Roaming for an unremembered deposit: wander extra areas and
            # only find it with some probability this step.  Memory turns
            # this gamble into a direct trip — the step-count value the
            # paper measures in Fig. 3/Fig. 5.
            search_areas = max(1, len(AREAS) // 2)
            if rng.random() > SEARCH_FIND_PROBABILITY:
                wrong_areas = [a for a in AREAS[1:] if a != area]
                player.area = wrong_areas[int(rng.integers(len(wrong_areas)))]
                return ExecutionOutcome(
                    success=False,
                    primitive_count=search_areas + 1,
                    compute=ComputeCost(actionlist_actions=search_areas + 1),
                    actuation_seconds=(search_areas + 1) * TRAVEL_SECONDS_PER_AREA,
                    reason="deposit not found while searching",
                )
            moves, travel_time = self._travel(player, area)
            moves += search_areas
            travel_time += search_areas * TRAVEL_SECONDS_PER_AREA
        else:
            moves, travel_time = self._travel(player, area)
        tool = GATHER_TOOL[resource]
        if tool and player.count(tool) < 1:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=moves + 1),
                actuation_seconds=travel_time + 1.0,
                reason=f"requires {tool}",
            )
        player.add(resource, GATHER_YIELD[resource])
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 4,
            compute=ComputeCost(actionlist_actions=moves + 4),
            actuation_seconds=travel_time + GATHER_SECONDS,
            progress_delta=0.0,
        )

    def _do_craft(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        item = subgoal.target
        player = self._players[agent]
        if item not in RECIPES:
            return ExecutionOutcome.failure(f"unknown recipe {item!r}")
        moves, travel_time = self._travel(player, "base")
        if not self._craftable(player, item):
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=moves + 1),
                actuation_seconds=travel_time + CRAFT_SECONDS,
                reason="missing ingredients",
            )
        for ingredient, count in RECIPES[item].items():
            if count > 0:
                player.remove(ingredient, count)
        player.add(item, 1)
        progress = 1.0 if item == self.goal_item else 0.0
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 3,
            compute=ComputeCost(actionlist_actions=moves + 3),
            actuation_seconds=travel_time + CRAFT_SECONDS,
            progress_delta=progress,
        )

    def _do_idle(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        return ExecutionOutcome(
            success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
        )

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        # Progress = fraction of the requirement closure already satisfied,
        # which gives the planner's utility oracle a smooth signal.
        total = len(self.needed_items)
        if total == 0:
            return 1.0
        have = sum(
            1
            for item in self.needed_items
            if any(self._players[a].count(item) >= 1 for a in self.agents)
        )
        goal_done = any(
            self._players[agent].count(self.goal_item) >= 1 for agent in self.agents
        )
        return 1.0 if goal_done else min(0.99, have / total)

    def describe_task(self) -> str:
        return (
            f"Open world crafting task: obtain a {self.goal_item}. Resources "
            "must be gathered with the right tool tier and crafted at base."
        )


class _DeficitCalculator:
    """Memoized demand propagation over the tech-tree DAG.

    Demand flows down from the goal: recipe ingredients are demanded in
    proportion to their consumers' deficits, stations at most once, and a
    tool is demanded while any resource gated on it still has a deficit.
    The tool edge can close a cycle through shared ingredients (sticks
    feed every pickaxe tier), so re-entrant queries conservatively return
    zero — the cycle only exists in the heuristic demand estimate, never
    in the crafting DAG itself.
    """

    def __init__(self, env: "MineWorldEnv", player: _Player) -> None:
        self.env = env
        self.player = player
        self._memo: dict[str, int] = {}
        self._in_progress: set[str] = set()

    def item_deficit(self, item: str) -> int:
        if item in self._memo:
            return self._memo[item]
        if item in self._in_progress:
            return 0
        self._in_progress.add(item)
        try:
            deficit = self._compute_item(item)
        finally:
            self._in_progress.discard(item)
        self._memo[item] = deficit
        return deficit

    def _compute_item(self, item: str) -> int:
        player = self.player
        if item == self.env.goal_item:
            return 0 if player.count(item) >= 1 else 1
        demanded = 0
        for consumer in self.env.needed_items:
            recipe = RECIPES.get(consumer, {})
            if item not in recipe:
                continue
            consumer_deficit = self.item_deficit(consumer)
            if consumer_deficit <= 0:
                continue
            count = recipe[item]
            demanded += 1 if count == 0 else count * consumer_deficit
        if item in STATIONS:
            demanded = min(demanded, 1)
        if player.count(item) == 0 and self._is_needed_tool(item):
            demanded = max(demanded, 1)
        return max(0, demanded - player.count(item))

    def resource_deficit(self, resource: str) -> int:
        demanded = 0
        for consumer in self.env.needed_items:
            recipe = RECIPES.get(consumer, {})
            if resource in recipe and self.item_deficit(consumer) > 0:
                demanded += recipe[resource] * max(1, self.item_deficit(consumer))
        return max(0, demanded - self.player.count(resource))

    def _is_needed_tool(self, item: str) -> bool:
        for resource, tool in GATHER_TOOL.items():
            if tool == item and self.resource_deficit(resource) > 0:
                return True
        return False
