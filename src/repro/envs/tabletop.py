"""Tabletop environment: RoCoBench substitute for multi-arm manipulation.

A continuous unit-square workspace shared by several fixed-base robot
arms.  Objects must be transported into target zones; each arm only
reaches part of the table, so out-of-reach objects are relayed through a
central exchange region.  Every transport plans a real RRT path around
the other arms' occupancy discs — the execution-latency profile the paper
highlights for RoCo (49.4 % of step time in low-level planning/motion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.planners.costmodel import ComputeCost
from repro.planners.rrt import CircleObstacle, rrt_plan

ARM_REACH = 0.62
ARM_SPEED_SECONDS_PER_UNIT = 16.0
GRIP_SECONDS = 1.4
EXCHANGE_CENTER = (0.5, 0.5)
EXCHANGE_RADIUS = 0.12
#: Radius of the static occupancy disc each *other* arm contributes.
ARM_OCCUPANCY_RADIUS = 0.07

_DIFFICULTY_SETTINGS = {"easy": 8, "medium": 14, "hard": 20}

_OBJECT_NAMES = ["cube", "cylinder", "prism", "sphere", "cone", "disk", "block"]


@dataclass
class _TableObject:
    name: str
    position: tuple[float, float]
    zone_center: tuple[float, float]
    delivered: bool = False


@dataclass
class _Arm:
    name: str
    base: tuple[float, float]

    def reaches(self, point: tuple[float, float]) -> bool:
        return float(np.hypot(point[0] - self.base[0], point[1] - self.base[1])) <= ARM_REACH


class TabletopEnv(Environment):
    """See module docstring."""

    name = "tabletop"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        if task.n_agents < 1:
            raise ValueError("tabletop needs at least one arm")
        # Arms spaced around the table edge.
        self._arms: dict[str, _Arm] = {}
        for index, agent in enumerate(self.agents):
            angle = 2.0 * np.pi * index / max(1, len(self.agents))
            base = (
                float(0.5 + 0.45 * np.cos(angle)),
                float(0.5 + 0.45 * np.sin(angle)),
            )
            self._arms[agent] = _Arm(name=agent, base=base)

        count = _DIFFICULTY_SETTINGS[task.difficulty]
        self.objects: dict[str, _TableObject] = {}
        for index in range(count):
            name = f"{_OBJECT_NAMES[index % len(_OBJECT_NAMES)]}_{index}"
            position = (float(rng.uniform(0.08, 0.92)), float(rng.uniform(0.08, 0.92)))
            zone = (float(rng.uniform(0.08, 0.92)), float(rng.uniform(0.08, 0.92)))
            self.objects[name] = _TableObject(name=name, position=position, zone_center=zone)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        base = self._arms[agent].base
        return f"arm_base_{base[0]:.2f}_{base[1]:.2f}"

    def _region_label(self, point: tuple[float, float]) -> str:
        horizontal = "left" if point[0] < 0.5 else "right"
        vertical = "near" if point[1] < 0.5 else "far"
        return f"{vertical}_{horizontal}_quadrant"

    def visible_facts(self, agent: str) -> list[Fact]:
        """Each arm's wrist camera covers its own reach plus the exchange.

        Far-side objects are invisible until a teammate mentions them or
        they get staged centrally — which is what makes memory and
        communication carry weight for RoCo-style systems.
        """
        arm = self._arms[agent]
        step = self.state.step_index
        facts = []
        for obj in self.objects.values():
            if not (arm.reaches(obj.position) or self._in_exchange(obj.position)):
                continue
            if obj.delivered:
                facts.append(
                    Fact(subject=obj.name, relation="delivered", value="true", step=step)
                )
            else:
                facts.append(
                    Fact(
                        subject=obj.name,
                        relation="located_in",
                        value=self._region_label(obj.position),
                        step=step,
                    )
                )
        return sorted(facts, key=lambda fact: (fact.subject, fact.relation))

    @staticmethod
    def _in_exchange(point: tuple[float, float]) -> bool:
        return (
            float(
                np.hypot(point[0] - EXCHANGE_CENTER[0], point[1] - EXCHANGE_CENTER[1])
            )
            <= EXCHANGE_RADIUS
        )

    def static_facts(self) -> list[Fact]:
        return [
            Fact(
                subject=obj.name,
                relation="zone_in",
                value=self._region_label(obj.zone_center),
            )
            for obj in sorted(self.objects.values(), key=lambda o: o.name)
        ]

    def location_vocabulary(self) -> list[str]:
        return [
            "near_left_quadrant",
            "near_right_quadrant",
            "far_left_quadrant",
            "far_right_quadrant",
        ]

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidates(self, agent: str, beliefs: Beliefs) -> list[Candidate]:
        arm = self._arms[agent]
        options: list[Candidate] = []
        for obj in self.objects.values():
            if obj.delivered:
                continue
            # An arm can only plan for objects it knows about (seen now,
            # remembered, or reported by a teammate).
            if beliefs.value(obj.name, "located_in") is None:
                continue
            can_reach_object = arm.reaches(obj.position)
            can_reach_zone = arm.reaches(obj.zone_center)
            if can_reach_object and can_reach_zone:
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="transport", target=obj.name), utility=0.95
                    )
                )
            elif can_reach_object:
                if not self._in_exchange(obj.position):
                    options.append(
                        Candidate(
                            subgoal=Subgoal(name="stage", target=obj.name), utility=0.7
                        )
                    )
            elif can_reach_zone:
                options.append(  # cannot grab it yet: infeasible until staged
                    Candidate(
                        subgoal=Subgoal(name="transport", target=obj.name),
                        utility=0.0,
                        feasible=False,
                    )
                )
        options.append(Candidate(subgoal=Subgoal(name="idle"), utility=0.05))
        options.extend(self.hallucination_candidates(count=1))
        return options

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _obstacles_for(self, agent: str) -> list[CircleObstacle]:
        return [
            CircleObstacle(x=arm.base[0], y=arm.base[1], radius=ARM_OCCUPANCY_RADIUS)
            for name, arm in self._arms.items()
            if name != agent
        ]

    def _motion(
        self,
        agent: str,
        start: tuple[float, float],
        goal: tuple[float, float],
        rng: np.random.Generator,
    ) -> tuple[bool, ComputeCost, float]:
        result = rrt_plan(
            start=start, goal=goal, obstacles=self._obstacles_for(agent), rng=rng
        )
        cost = ComputeCost(rrt_iterations=result.iterations)
        if not result.found:
            return False, cost, 0.0
        return True, cost, result.length * ARM_SPEED_SECONDS_PER_UNIT

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.name == "idle":
            return ExecutionOutcome(
                success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
            )
        obj = self.objects.get(subgoal.target)
        if obj is None:
            return ExecutionOutcome.failure(f"no such object {subgoal.target!r}")
        if obj.delivered:
            return ExecutionOutcome.failure("object already delivered")
        arm = self._arms[agent]
        if not arm.reaches(obj.position):
            return ExecutionOutcome.failure("object out of reach")
        if not self.claim(f"object:{obj.name}", agent):
            return ExecutionOutcome.failure("object claimed by teammate")

        if subgoal.name == "transport":
            destination = obj.zone_center
        elif subgoal.name == "stage":
            destination = EXCHANGE_CENTER
        else:
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        if not arm.reaches(destination):
            return ExecutionOutcome.failure("destination out of reach")

        ok, compute, motion_seconds = self._motion(agent, obj.position, destination, rng)
        if not ok:
            return ExecutionOutcome(
                success=False,
                primitive_count=1,
                compute=compute,
                actuation_seconds=1.0,
                reason="motion planning failed",
            )
        obj.position = destination
        delivered = subgoal.name == "transport"
        if delivered:
            obj.delivered = True
        return ExecutionOutcome(
            success=True,
            primitive_count=3,
            compute=compute,
            actuation_seconds=motion_seconds + 2 * GRIP_SECONDS,
            progress_delta=(1.0 / max(1, len(self.objects))) if delivered else 0.0,
        )

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        # Waypoint-level arm control: an LLM issuing primitives must emit
        # every trajectory segment, not just pick/place.
        return 9 if subgoal.name in ("transport", "stage") else 1

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        done = sum(1 for obj in self.objects.values() if obj.delivered)
        return done / max(1, len(self.objects))

    def describe_task(self) -> str:
        return (
            f"Tabletop task: move all {len(self.objects)} objects into their "
            "target zones; out of reach objects must be staged at the "
            "central exchange."
        )
