"""Cuisine environment: CuisineWorld / TDW-Cook substitute.

An order-driven cooking game: dishes are requested over time, each dish is
a recipe of ingredients that must be fetched from the pantry, optionally
cooked at the stove, assembled, and served at the window.  The kitchen is
divided into zones with zone-local observability, so remembering which
ingredients are already prepped is what the memory module buys (Fig. 5's
MindAgent sweep), and simultaneous station grabs by multiple agents create
the coordination pressure behind the scalability analysis (Fig. 7).

Used by: MindAgent (centralized), COMBO (decentralized).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.candidates import CandidateSlot, idle_candidates
from repro.planners.costmodel import ComputeCost


def _inspect_options() -> list[Candidate]:
    return [
        Candidate(subgoal=Subgoal(name="inspect", target=zone), utility=0.25)
        for zone in ("stove", "assembly")
    ]


#: Kitchen zones on a line; travel time scales with zone distance.
ZONES = ("pantry", "stove", "assembly", "window")
ZONE_INDEX = {zone: index for index, zone in enumerate(ZONES)}
TRAVEL_SECONDS_PER_ZONE = 1.1
OPERATE_SECONDS = 1.8
#: Cooks that fit at the pantry / serving window per step.
ZONE_CAPACITY = 2
#: Default steps an order waits before customers give up.  0 disables
#: expiry; MindAgent's CuisineWorld enables it via task params (TDW-Cook,
#: COMBO's benchmark, has no order timeout).
DEFAULT_ORDER_DEADLINE_STEPS = 0

#: Recipes: ingredient -> needs cooking.
RECIPES: dict[str, dict[str, bool]] = {
    "salad": {"lettuce": False, "tomato": False},
    "sandwich": {"bread": False, "cheese": False, "ham": False},
    "soup": {"onion": True, "tomato": True},
    "pasta": {"noodles": True, "sauce": False},
    "burger": {"bun": False, "patty": True, "lettuce": False},
    "stew": {"potato": True, "carrot": True, "onion": True},
    "pizza": {"dough": True, "cheese": False, "sauce": False},
}

_DIFFICULTY_SETTINGS = {
    "easy": {"orders": 3, "dishes": ["salad", "sandwich"], "arrival_gap": 0},
    "medium": {"orders": 5, "dishes": ["salad", "soup", "pasta", "burger"], "arrival_gap": 3},
    "hard": {"orders": 7, "dishes": ["burger", "stew", "pizza", "pasta"], "arrival_gap": 2},
}

#: Ingredient stages, in order.
STAGE_NEEDED = "needed"
STAGE_FETCHED = "fetched"
STAGE_COOKED = "cooked"


@dataclass
class _Ingredient:
    name: str
    needs_cook: bool
    stage: str = STAGE_NEEDED

    @property
    def ready(self) -> bool:
        return self.stage == STAGE_COOKED or (
            not self.needs_cook and self.stage == STAGE_FETCHED
        )

    @property
    def zone(self) -> str:
        """Zone where the item currently sits (and is visible)."""
        if self.stage == STAGE_NEEDED:
            return "pantry"
        if self.stage == STAGE_FETCHED and self.needs_cook:
            return "stove"
        return "assembly"


@dataclass
class _Order:
    name: str
    dish: str
    arrival_step: int
    ingredients: dict[str, _Ingredient]
    assembled: bool = False
    served: bool = False
    expired: bool = False
    deadline_steps: int = DEFAULT_ORDER_DEADLINE_STEPS

    @property
    def deadline(self) -> int:
        """Step after which the order expires (no expiry when <= 0)."""
        if self.deadline_steps <= 0:
            return 1 << 30
        return self.arrival_step + self.deadline_steps

    def item_id(self, ingredient: str) -> str:
        return f"{self.name}:{ingredient}"


@dataclass
class _Cook:
    name: str
    zone: str = "assembly"


class CuisineEnv(Environment):
    """See module docstring."""

    name = "cuisine"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        settings = _DIFFICULTY_SETTINGS[task.difficulty]
        # CuisineWorld scales demand with the brigade: each cook beyond
        # the base pair brings one extra order.  Without this, large
        # teams trivially over-provision the kitchen and the scalability
        # pressure the paper measures (Fig. 7) never materializes.
        n_orders = settings["orders"] + max(0, task.n_agents - 2)
        deadline_steps = int(task.params.get("deadline_steps", DEFAULT_ORDER_DEADLINE_STEPS))
        self.orders: list[_Order] = []
        for index in range(n_orders):
            dish = settings["dishes"][int(rng.integers(len(settings["dishes"])))]
            self.orders.append(
                _Order(
                    name=f"order_{index}",
                    dish=dish,
                    arrival_step=index * settings["arrival_gap"],
                    ingredients={
                        ingredient: _Ingredient(name=ingredient, needs_cook=needs_cook)
                        for ingredient, needs_cook in RECIPES[dish].items()
                    },
                    deadline_steps=deadline_steps,
                )
            )
        self._cooks: dict[str, _Cook] = {agent: _Cook(name=agent) for agent in self.agents}

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def tick(self) -> None:
        super().tick()
        # Customers walk away: unserved orders expire at their deadline,
        # permanently capping achievable progress — the throughput
        # pressure that makes over-staffed, badly-coordinated kitchens
        # fail at scale (Fig. 7a).
        for order in self.orders:
            if not order.served and self.state.step_index > order.deadline:
                order.expired = True

    def _active_orders(self) -> list[_Order]:
        return [
            order
            for order in self.orders
            if order.arrival_step <= self.state.step_index
            and not order.served
            and not order.expired
        ]

    def agent_position(self, agent: str) -> str:
        return self._cooks[agent].zone

    def visible_facts(self, agent: str) -> list[Fact]:
        zone = self._cooks[agent].zone
        step = self.state.step_index
        facts = [Fact(subject=zone, relation="visited", value="true", step=step)]
        for order in self._active_orders():
            # The order board is global.
            facts.append(
                Fact(subject=order.name, relation="requests", value=order.dish, step=step)
            )
            if order.assembled:
                facts.append(
                    Fact(subject=order.name, relation="status", value="assembled", step=step)
                )
            for ingredient in order.ingredients.values():
                if ingredient.zone == zone and ingredient.stage != STAGE_NEEDED:
                    facts.append(
                        Fact(
                            subject=order.item_id(ingredient.name),
                            relation="stage",
                            value=ingredient.stage,
                            step=step,
                        )
                    )
        return sorted(facts, key=lambda fact: (fact.subject, fact.relation))

    def static_facts(self) -> list[Fact]:
        facts = []
        for dish, recipe in sorted(RECIPES.items()):
            ingredients = " and ".join(sorted(recipe))
            facts.append(Fact(subject=dish, relation="is_made_of", value=ingredients))
        return facts

    def location_vocabulary(self) -> list[str]:
        return list(ZONES)

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidate_slots(self, agent: str, beliefs: Beliefs) -> list[CandidateSlot]:
        slots: list[CandidateSlot] = []
        for order in self._active_orders():
            stages = tuple(
                beliefs.value(order.item_id(name), "stage") or STAGE_NEEDED
                for name in order.ingredients
            )
            slots.append(
                CandidateSlot(
                    f"order:{order.name}",
                    (order.assembled, stages),
                    partial(self._order_options, order, stages),
                )
            )
        slots.append(CandidateSlot("inspect", (), _inspect_options))
        slots.append(CandidateSlot("idle", (), partial(idle_candidates, 0.02)))
        slots.append(CandidateSlot("hallucination", (), self.hallucination_candidates))
        return slots

    @staticmethod
    def _order_options(order: _Order, stages: tuple[str, ...]) -> list[Candidate]:
        if order.assembled:
            return [
                Candidate(subgoal=Subgoal(name="serve", target=order.name), utility=1.0)
            ]
        options: list[Candidate] = []
        all_ready_by_belief = True
        for ingredient, believed_stage in zip(order.ingredients.values(), stages):
            item = order.item_id(ingredient.name)
            if believed_stage == STAGE_NEEDED:
                all_ready_by_belief = False
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="fetch", target=item),
                        utility=0.8,
                    )
                )
            elif believed_stage == STAGE_FETCHED and ingredient.needs_cook:
                all_ready_by_belief = False
                options.append(
                    Candidate(subgoal=Subgoal(name="cook", target=item), utility=0.9)
                )
        if all_ready_by_belief:
            options.append(
                Candidate(
                    subgoal=Subgoal(name="assemble", target=order.name), utility=0.95
                )
            )
        else:
            options.append(
                Candidate(
                    subgoal=Subgoal(name="serve", target=order.name),
                    utility=0.0,
                    feasible=False,
                )
            )
        return options

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        handler = {
            "fetch": self._do_fetch,
            "cook": self._do_cook,
            "assemble": self._do_assemble,
            "serve": self._do_serve,
            "inspect": self._do_inspect,
            "idle": self._do_idle,
        }.get(subgoal.name)
        if handler is None:
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        return handler(agent, subgoal, rng)

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        return {
            "fetch": 3,
            "cook": 3,
            "assemble": 4,
            "serve": 2,
            "inspect": 1,
            "idle": 1,
        }.get(subgoal.name, 1)

    def _find_order_item(self, item: str) -> tuple[_Order, _Ingredient] | None:
        if ":" not in item:
            return None
        order_name, ingredient_name = item.split(":", 1)
        for order in self.orders:
            if order.name == order_name:
                ingredient = order.ingredients.get(ingredient_name)
                if ingredient is not None:
                    return order, ingredient
        return None

    def _travel(self, agent: str, zone: str) -> tuple[int, float]:
        cook = self._cooks[agent]
        distance = abs(ZONE_INDEX[cook.zone] - ZONE_INDEX[zone])
        cook.zone = zone
        return distance, distance * TRAVEL_SECONDS_PER_ZONE

    def _do_fetch(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        found = self._find_order_item(subgoal.target)
        if found is None:
            return ExecutionOutcome.failure(f"unknown item {subgoal.target!r}")
        order, ingredient = found
        if order.arrival_step > self.state.step_index or order.served:
            return ExecutionOutcome.failure("order not active")
        if not self.claim(f"item:{subgoal.target}", agent):
            return ExecutionOutcome.failure("item claimed by teammate")
        if not self.claim_slot("zone:pantry", agent, ZONE_CAPACITY):
            return ExecutionOutcome.failure("pantry congested", actuation_seconds=1.0)
        moves, travel_time = self._travel(agent, "pantry")
        if ingredient.stage != STAGE_NEEDED:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=1),
                actuation_seconds=travel_time + OPERATE_SECONDS,
                reason="already fetched",
            )
        ingredient.stage = STAGE_FETCHED
        destination = "stove" if ingredient.needs_cook else "assembly"
        extra_moves, extra_time = self._travel(agent, destination)
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + extra_moves + 2,
            compute=ComputeCost(actionlist_actions=moves + extra_moves + 2),
            actuation_seconds=travel_time + extra_time + OPERATE_SECONDS,
        )

    def _do_cook(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        found = self._find_order_item(subgoal.target)
        if found is None:
            return ExecutionOutcome.failure(f"unknown item {subgoal.target!r}")
        _order, ingredient = found
        if not self.claim("station:stove", agent):
            return ExecutionOutcome.failure("stove occupied")
        moves, travel_time = self._travel(agent, "stove")
        if ingredient.stage != STAGE_FETCHED or not ingredient.needs_cook:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=1),
                actuation_seconds=travel_time + OPERATE_SECONDS,
                reason="nothing to cook",
            )
        ingredient.stage = STAGE_COOKED
        extra_moves, extra_time = self._travel(agent, "assembly")
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + extra_moves + 2,
            compute=ComputeCost(actionlist_actions=moves + extra_moves + 2),
            actuation_seconds=travel_time + extra_time + 2 * OPERATE_SECONDS,
        )

    def _do_assemble(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        order = next((o for o in self.orders if o.name == subgoal.target), None)
        if order is None:
            return ExecutionOutcome.failure(f"unknown order {subgoal.target!r}")
        if not self.claim("station:assembly", agent):
            return ExecutionOutcome.failure("assembly station occupied")
        moves, travel_time = self._travel(agent, "assembly")
        if order.assembled or order.served:
            return ExecutionOutcome.failure("order already assembled")
        if not all(ingredient.ready for ingredient in order.ingredients.values()):
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=1),
                actuation_seconds=travel_time + OPERATE_SECONDS,
                reason="missing ingredients",
            )
        order.assembled = True
        n_items = len(order.ingredients)
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + n_items + 1,
            compute=ComputeCost(actionlist_actions=moves + n_items + 1),
            actuation_seconds=travel_time + n_items * OPERATE_SECONDS,
        )

    def _do_serve(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        order = next((o for o in self.orders if o.name == subgoal.target), None)
        if order is None:
            return ExecutionOutcome.failure(f"unknown order {subgoal.target!r}")
        if not self.claim_slot("zone:window", agent, ZONE_CAPACITY):
            return ExecutionOutcome.failure("window congested", actuation_seconds=1.0)
        moves, travel_time = self._travel(agent, "window")
        if order.expired:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=1),
                actuation_seconds=travel_time + OPERATE_SECONDS,
                reason="order expired",
            )
        if not order.assembled or order.served:
            return ExecutionOutcome(
                success=False,
                primitive_count=moves + 1,
                compute=ComputeCost(actionlist_actions=1),
                actuation_seconds=travel_time + OPERATE_SECONDS,
                reason="order not ready",
            )
        order.served = True
        return ExecutionOutcome(
            success=True,
            primitive_count=moves + 1,
            compute=ComputeCost(actionlist_actions=moves + 1),
            actuation_seconds=travel_time + OPERATE_SECONDS,
            progress_delta=1.0 / max(1, len(self.orders)),
        )

    def _do_inspect(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.target not in ZONE_INDEX:
            return ExecutionOutcome.failure(f"unknown zone {subgoal.target!r}")
        moves, travel_time = self._travel(agent, subgoal.target)
        return ExecutionOutcome(
            success=True,
            primitive_count=max(1, moves),
            compute=ComputeCost(actionlist_actions=max(1, moves)),
            actuation_seconds=travel_time + 0.4,
        )

    def _do_idle(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        return ExecutionOutcome(
            success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
        )

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        served = sum(1 for order in self.orders if order.served)
        return served / max(1, len(self.orders))

    def describe_task(self) -> str:
        dishes = ", ".join(order.dish for order in self.orders)
        return (
            f"Kitchen task: cook and serve {len(self.orders)} orders "
            f"({dishes}) before the shift ends."
        )
