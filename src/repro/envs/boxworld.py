"""Boxworld environment: BoxNet1/BoxNet2, Warehouse, and BoxLift substitute.

A line of cells with fixed robot arms.  Each arm reaches its base cell and
the adjacent cells; boxes must be relayed arm-to-arm toward target cells.
The ``boxlift`` variant adds heavy boxes that two arms must lift in the
same macro step — the canonical coordination stressor from the CMAS/DMAS/
HMAS paper.  Variants are selected through ``TaskSpec.params["variant"]``:

- ``boxnet1`` (default): arms packed shoulder to shoulder (short relays).
- ``warehouse``: arms spread out, so relays take twice the handoffs.
- ``boxlift``: half the boxes are heavy and need synchronized lifting.

Used by: CMAS (centralized), DMAS (decentralized), HMAS (hybrid).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.envs.candidates import CandidateSlot, idle_candidates
from repro.planners.costmodel import ComputeCost


def _no_options() -> list[Candidate]:
    """Builder for a slot whose conditions currently offer nothing."""
    return []


MOVE_BOX_SECONDS = 2.4
LIFT_SECONDS = 3.0
PRIMITIVES_PER_MOVE = 4
PRIMITIVES_PER_LIFT = 3

_DIFFICULTY_SETTINGS = {"easy": 6, "medium": 10, "hard": 14}
VARIANTS = ("boxnet1", "boxnet2", "warehouse", "boxlift")


@dataclass
class _Box:
    name: str
    cell: int
    target: int
    heavy: bool = False
    lifted: bool = False

    @property
    def done(self) -> bool:
        return self.lifted if self.heavy else self.cell == self.target


@dataclass
class _Arm:
    name: str
    base: int

    def reaches(self, cell: int) -> bool:
        return abs(cell - self.base) <= 1


class BoxWorldEnv(Environment):
    """See module docstring."""

    name = "boxworld"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        if task.n_agents < 2:
            raise ValueError("boxworld needs at least 2 arms")
        self.variant: str = str(task.params.get("variant", "boxnet1"))
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown boxworld variant {self.variant!r}")

        spacing = 2 if self.variant == "warehouse" else 1
        self._arms: dict[str, _Arm] = {
            agent: _Arm(name=agent, base=index * spacing)
            for index, agent in enumerate(self.agents)
        }
        self.n_cells = (len(self.agents) - 1) * spacing + 1

        n_boxes = _DIFFICULTY_SETTINGS[task.difficulty]
        heavy_fraction = 0.5 if self.variant == "boxlift" else 0.0
        self.boxes: dict[str, _Box] = {}
        for index in range(n_boxes):
            start = int(rng.integers(self.n_cells))
            target = int(rng.integers(self.n_cells))
            while target == start and self.n_cells > 1:
                target = int(rng.integers(self.n_cells))
            heavy = rng.random() < heavy_fraction
            self.boxes[f"box_{index}"] = _Box(
                name=f"box_{index}", cell=start, target=target, heavy=heavy
            )
        self._lift_support: dict[str, set[str]] = {}

    def tick(self) -> None:
        super().tick()
        self._lift_support.clear()

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        return f"cell_{self._arms[agent].base}"

    def visible_facts(self, agent: str) -> list[Fact]:
        step = self.state.step_index
        facts = []
        for box in self.boxes.values():
            if box.done:
                facts.append(
                    Fact(subject=box.name, relation="done", value="true", step=step)
                )
            else:
                facts.append(
                    Fact(
                        subject=box.name,
                        relation="at_cell",
                        value=f"cell_{box.cell}",
                        step=step,
                    )
                )
        return sorted(facts, key=lambda fact: (fact.subject, fact.relation))

    def static_facts(self) -> list[Fact]:
        facts = []
        for box in sorted(self.boxes.values(), key=lambda b: b.name):
            facts.append(
                Fact(subject=box.name, relation="target", value=f"cell_{box.target}")
            )
            if box.heavy:
                facts.append(Fact(subject=box.name, relation="weight", value="heavy"))
        return facts

    def location_vocabulary(self) -> list[str]:
        return [f"cell_{index}" for index in range(self.n_cells)]

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidate_slots(self, agent: str, beliefs: Beliefs) -> list[CandidateSlot]:
        arm = self._arms[agent]
        slots: list[CandidateSlot] = []
        for box in self.boxes.values():
            believed_cell = self._believed_cell(beliefs, box)
            if box.done or believed_cell is None or not arm.reaches(believed_cell):
                # Emitting the slot with the reason folded into its deps
                # (rather than skipping it) lets "box became reachable /
                # done" invalidate exactly this box's group.
                slots.append(CandidateSlot(f"box:{box.name}", (None,), _no_options))
                continue
            targeted_by = beliefs.value(box.name, "targeted_by")
            claimed = targeted_by not in ("", None, agent)
            slots.append(
                CandidateSlot(
                    f"box:{box.name}",
                    (believed_cell, claimed),
                    partial(self._box_options, arm, box, believed_cell, claimed),
                )
            )
        slots.append(CandidateSlot("idle", (), partial(idle_candidates, 0.05)))
        slots.append(CandidateSlot("hallucination", (), self.hallucination_candidates))
        return slots

    def _box_options(
        self, arm: _Arm, box: _Box, believed_cell: int, claimed: bool
    ) -> list[Candidate]:
        options: list[Candidate] = []
        claimed_penalty = 0.5 if claimed else 1.0
        if box.heavy:
            return [
                Candidate(
                    subgoal=Subgoal(name="lift", target=box.name),
                    utility=0.9 * claimed_penalty,
                )
            ]
        toward = believed_cell + (1 if box.target > believed_cell else -1)
        away = believed_cell - (1 if box.target > believed_cell else -1)
        if arm.reaches(toward) and 0 <= toward < self.n_cells:
            options.append(
                Candidate(
                    subgoal=Subgoal(
                        name="move_box", target=box.name, destination=f"cell_{toward}"
                    ),
                    utility=0.85 * claimed_penalty,
                )
            )
        if arm.reaches(away) and 0 <= away < self.n_cells:
            # Moving a box away from its target is strictly worse than
            # idling: it must rank below idle or a bystander arm will
            # "helpfully" play tug-of-war with the productive arm.  It
            # remains in the list as suboptimal-fault material.
            options.append(
                Candidate(
                    subgoal=Subgoal(
                        name="move_box", target=box.name, destination=f"cell_{away}"
                    ),
                    utility=0.03,
                )
            )
        return options

    def _believed_cell(self, beliefs: Beliefs, box: _Box) -> int | None:
        value = beliefs.value(box.name, "at_cell")
        if value is None:
            return None
        try:
            return int(value.removeprefix("cell_"))
        except ValueError:
            return None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.name == "move_box":
            return self._do_move(agent, subgoal)
        if subgoal.name == "lift":
            return self._do_lift(agent, subgoal)
        if subgoal.name == "idle":
            return ExecutionOutcome(
                success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
            )
        return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        if subgoal.name == "move_box":
            return PRIMITIVES_PER_MOVE + 2  # reach, align, grab, move, place, release
        if subgoal.name == "lift":
            return PRIMITIVES_PER_LIFT + 2
        return 1

    def _do_move(self, agent: str, subgoal: Subgoal) -> ExecutionOutcome:
        box = self.boxes.get(subgoal.target)
        if box is None:
            return ExecutionOutcome.failure(f"no such box {subgoal.target!r}")
        arm = self._arms[agent]
        if box.done:
            return ExecutionOutcome.failure("box already done")
        if box.heavy:
            return ExecutionOutcome.failure("box too heavy to move alone")
        if not arm.reaches(box.cell):
            return ExecutionOutcome.failure("box out of reach")
        try:
            destination = int(subgoal.destination.removeprefix("cell_"))
        except ValueError:
            return ExecutionOutcome.failure(f"bad destination {subgoal.destination!r}")
        if not (0 <= destination < self.n_cells) or abs(destination - box.cell) != 1:
            return ExecutionOutcome.failure("destination not adjacent")
        if not arm.reaches(destination):
            return ExecutionOutcome.failure("destination out of reach")
        if not self.claim(f"box:{box.name}", agent):
            return ExecutionOutcome.failure("box claimed by teammate")
        old_distance = abs(box.cell - box.target)
        box.cell = destination
        new_distance = abs(box.cell - box.target)
        progress = 0.0
        if box.done:
            progress = 1.0 / max(1, len(self.boxes))
        return ExecutionOutcome(
            success=True,
            primitive_count=PRIMITIVES_PER_MOVE,
            compute=ComputeCost(actionlist_actions=PRIMITIVES_PER_MOVE),
            actuation_seconds=MOVE_BOX_SECONDS,
            progress_delta=progress,
            reason="" if new_distance < old_distance else "moved away from target",
        )

    def _do_lift(self, agent: str, subgoal: Subgoal) -> ExecutionOutcome:
        box = self.boxes.get(subgoal.target)
        if box is None:
            return ExecutionOutcome.failure(f"no such box {subgoal.target!r}")
        arm = self._arms[agent]
        if not box.heavy:
            return ExecutionOutcome.failure("box does not need lifting")
        if box.lifted:
            return ExecutionOutcome.failure("box already lifted")
        if not arm.reaches(box.cell):
            return ExecutionOutcome.failure("box out of reach")
        supporters = self._lift_support.setdefault(box.name, set())
        supporters.add(agent)
        if len(supporters) >= 2:
            box.lifted = True
            return ExecutionOutcome(
                success=True,
                primitive_count=PRIMITIVES_PER_LIFT,
                compute=ComputeCost(actionlist_actions=PRIMITIVES_PER_LIFT),
                actuation_seconds=LIFT_SECONDS,
                progress_delta=1.0 / max(1, len(self.boxes)),
            )
        return ExecutionOutcome(
            success=True,
            primitive_count=PRIMITIVES_PER_LIFT,
            compute=ComputeCost(actionlist_actions=PRIMITIVES_PER_LIFT),
            actuation_seconds=LIFT_SECONDS,
            reason="waiting for lift partner",
        )

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        done = sum(1 for box in self.boxes.values() if box.done)
        return done / max(1, len(self.boxes))

    def describe_task(self) -> str:
        heavies = sum(1 for box in self.boxes.values() if box.heavy)
        text = (
            f"Box relay task ({self.variant}): move all {len(self.boxes)} boxes "
            "to their target cells by passing them between robot arms."
        )
        if heavies:
            text += f" {heavies} boxes are heavy and need two arms lifting together."
        return text
