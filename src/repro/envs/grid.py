"""Shared room-grid geometry for household-style environments.

A :class:`RoomGrid` is a rectangular cell grid partitioned into named
rooms connected by doorways.  Navigation runs real A* over the cells, so
execution latency scales with actual path lengths the way the paper's
low-level planners do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import hotpath
from repro.planners.astar import AStarResult, astar

Cell = tuple[int, int]


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room: cells with x0<=x<x1, y0<=y<y1."""

    name: str
    x0: int
    y0: int
    x1: int
    y1: int

    def contains(self, cell: Cell) -> bool:
        return self.x0 <= cell[0] < self.x1 and self.y0 <= cell[1] < self.y1

    def center(self) -> Cell:
        return ((self.x0 + self.x1 - 1) // 2, (self.y0 + self.y1 - 1) // 2)

    def cells(self) -> list[Cell]:
        return [
            (x, y) for x in range(self.x0, self.x1) for y in range(self.y0, self.y1)
        ]


@dataclass
class RoomGrid:
    """A grid of cells partitioned into rooms, with wall cells blocked."""

    width: int
    height: int
    rooms: list[Room]
    walls: set[Cell] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._room_by_name = {room.name: room for room in self.rooms}
        if len(self._room_by_name) != len(self.rooms):
            raise ValueError("duplicate room names")
        # Walls never change after construction, so a path is a pure
        # function of (start, goal) — memoized on the hot path.  Results
        # are immutable (tuple path), so sharing them is safe.  The same
        # staticness makes a room's passable-cell list reusable, which
        # takes the per-cell passability scan out of every execute-side
        # ``random_cell_in`` (explore/deposit targets, one per navigation).
        fast = hotpath.enabled()
        self._path_cache: dict[tuple[Cell, Cell], AStarResult] | None = (
            {} if fast else None
        )
        self._passable_cache: dict[str, list[Cell]] | None = {} if fast else None

    def room_named(self, name: str) -> Room:
        try:
            return self._room_by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._room_by_name))
            raise KeyError(f"unknown room {name!r}; known: {known}") from None

    def room_of(self, cell: Cell) -> str | None:
        for room in self.rooms:
            if room.contains(cell):
                return room.name
        return None

    def passable(self, cell: Cell) -> bool:
        return (
            0 <= cell[0] < self.width
            and 0 <= cell[1] < self.height
            and cell not in self.walls
        )

    def path(self, start: Cell, goal: Cell) -> AStarResult:
        cache = self._path_cache
        if cache is not None:
            result = cache.get((start, goal))
            if result is not None:
                return result
        result = astar(
            start=start,
            goal=goal,
            passable=self.passable,
            width=self.width,
            height=self.height,
        )
        if cache is not None:
            cache[(start, goal)] = result
        return result

    def _passable_cells(self, room_name: str) -> list[Cell]:
        cache = self._passable_cache
        if cache is not None:
            cells = cache.get(room_name)
            if cells is not None:
                return cells
        cells = [
            cell for cell in self.room_named(room_name).cells() if self.passable(cell)
        ]
        if cache is not None:
            cache[room_name] = cells
        return cells

    def random_cell_in(self, room_name: str, rng: np.random.Generator) -> Cell:
        options = self._passable_cells(room_name)
        if not options:
            raise ValueError(f"room {room_name!r} has no passable cells")
        return options[int(rng.integers(len(options)))]

    def room_names(self) -> list[str]:
        return [room.name for room in self.rooms]


def build_row_of_rooms(
    room_names: list[str],
    room_width: int = 5,
    room_height: int = 5,
) -> RoomGrid:
    """Lay rooms out in a row with single-cell doorways between neighbours.

    The wall column between adjacent rooms is blocked except for a doorway
    at mid-height, forcing realistic inter-room path lengths.
    """
    if not room_names:
        raise ValueError("at least one room required")
    rooms: list[Room] = []
    walls: set[Cell] = set()
    x_cursor = 0
    for index, name in enumerate(room_names):
        rooms.append(
            Room(name=name, x0=x_cursor, y0=0, x1=x_cursor + room_width, y1=room_height)
        )
        x_cursor += room_width
        if index < len(room_names) - 1:
            door_y = room_height // 2
            for y in range(room_height):
                if y != door_y:
                    walls.add((x_cursor, y))
            x_cursor += 1
    return RoomGrid(width=x_cursor, height=room_height, rooms=rooms, walls=walls)
