"""Kitchen environment: Franka Kitchen / Meta-World substitute.

Short-horizon manipulation: an episode is a set of micro-tasks (open the
microwave, slide the kettle, flip the light switch, ...) completed in any
order.  Execution runs a simulated low-level policy network (MLP forward
passes per control tick) with per-attempt success probability — the
EmbodiedGPT pipeline of a language planner picking sub-tasks and a policy
head executing them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.beliefs import Beliefs
from repro.core.types import Candidate, Fact, Subgoal, TaskSpec
from repro.envs.base import Environment, ExecutionOutcome
from repro.planners.costmodel import ComputeCost

#: Policy control ticks per manipulation attempt.
POLICY_TICKS = 40
ATTEMPT_SECONDS = 2.6
#: Probability one policy attempt completes the micro-task.
ATTEMPT_SUCCESS_P = 0.88

MICRO_TASKS = (
    "open_microwave",
    "move_kettle",
    "flip_light_switch",
    "open_slide_cabinet",
    "turn_oven_knob",
    "open_hinge_cabinet",
)

_DIFFICULTY_SETTINGS = {"easy": 6, "medium": 12, "hard": 18}


@dataclass
class _MicroTask:
    name: str
    done: bool = False


class KitchenEnv(Environment):
    """See module docstring."""

    name = "kitchen"

    def __init__(self, task: TaskSpec, rng: np.random.Generator) -> None:
        super().__init__(task, rng)
        count = _DIFFICULTY_SETTINGS[task.difficulty]
        # Episodes queue multiple instances of the micro-task library (a
        # Meta-World style multi-task session), named uniquely so status
        # facts stay unambiguous.
        self.micro_tasks: dict[str, _MicroTask] = {}
        for index in range(count):
            base = MICRO_TASKS[int(rng.integers(len(MICRO_TASKS)))]
            name = f"{base}_{index}"
            self.micro_tasks[name] = _MicroTask(name=name)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def agent_position(self, agent: str) -> str:
        return "kitchen_counter"

    def visible_facts(self, agent: str) -> list[Fact]:
        step = self.state.step_index
        return [
            Fact(
                subject=micro.name,
                relation="status",
                value="done" if micro.done else "pending",
                step=step,
            )
            for micro in sorted(self.micro_tasks.values(), key=lambda m: m.name)
        ]

    def static_facts(self) -> list[Fact]:
        return []

    def location_vocabulary(self) -> list[str]:
        return ["kitchen_counter"]

    # ------------------------------------------------------------------ #
    # Affordances
    # ------------------------------------------------------------------ #

    def candidates(self, agent: str, beliefs: Beliefs) -> list[Candidate]:
        options: list[Candidate] = []
        for micro in self.micro_tasks.values():
            believed = beliefs.value(micro.name, "status")
            if believed == "done":
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="perform", target=micro.name),
                        utility=0.0,
                        feasible=False,
                    )
                )
            else:
                options.append(
                    Candidate(
                        subgoal=Subgoal(name="perform", target=micro.name), utility=0.9
                    )
                )
        options.append(Candidate(subgoal=Subgoal(name="idle"), utility=0.02))
        options.extend(self.hallucination_candidates(count=1))
        return options

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, agent: str, subgoal: Subgoal, rng: np.random.Generator
    ) -> ExecutionOutcome:
        if subgoal.name == "idle":
            return ExecutionOutcome(
                success=True, primitive_count=1, compute=ComputeCost(), actuation_seconds=0.5
            )
        if subgoal.name != "perform":
            return ExecutionOutcome.failure(f"unknown subgoal {subgoal.name!r}")
        micro = self.micro_tasks.get(subgoal.target)
        if micro is None:
            return ExecutionOutcome.failure(f"unknown micro task {subgoal.target!r}")
        if micro.done:
            return ExecutionOutcome.failure("micro task already done")
        succeeded = bool(rng.random() < ATTEMPT_SUCCESS_P)
        if succeeded:
            micro.done = True
        return ExecutionOutcome(
            success=succeeded,
            primitive_count=POLICY_TICKS,
            compute=ComputeCost(policy_forwards=POLICY_TICKS),
            actuation_seconds=ATTEMPT_SECONDS,
            reason="" if succeeded else "policy attempt failed",
            progress_delta=(1.0 / max(1, len(self.micro_tasks))) if succeeded else 0.0,
        )

    def expected_primitives(self, agent: str, subgoal: Subgoal) -> int:
        return POLICY_TICKS if subgoal.name == "perform" else 1

    # ------------------------------------------------------------------ #
    # Goals
    # ------------------------------------------------------------------ #

    def goal_progress(self) -> float:
        done = sum(1 for micro in self.micro_tasks.values() if micro.done)
        return done / max(1, len(self.micro_tasks))

    def describe_task(self) -> str:
        names = ", ".join(sorted(self.micro_tasks))
        return f"Kitchen manipulation task: complete the sub tasks {names}."
