"""Analysis utilities: profiling, series extraction, tables, reports."""

from repro.analysis.profiler import (
    LatencyProfile,
    breakdown_rows,
    mean_llm_fraction,
    profile_from_aggregate,
)
from repro.analysis.report import (
    format_bar,
    format_bar_chart,
    format_series,
    format_table,
)
from repro.analysis.series import (
    growth_slope,
    token_series_by_agent_purpose,
    total_tokens_per_step,
)
from repro.analysis.tables import render_table1, render_table2, suite_rows, taxonomy_rows

__all__ = [
    "LatencyProfile",
    "breakdown_rows",
    "format_bar",
    "format_bar_chart",
    "format_series",
    "format_table",
    "growth_slope",
    "mean_llm_fraction",
    "profile_from_aggregate",
    "render_table1",
    "render_table2",
    "suite_rows",
    "taxonomy_rows",
    "token_series_by_agent_purpose",
    "total_tokens_per_step",
]
