"""Token-series extraction for the prompt-growth analysis (Fig. 6)."""

from __future__ import annotations

from collections import defaultdict

from repro.core.metrics import EpisodeResult


def token_series_by_agent_purpose(
    result: EpisodeResult,
    purposes: tuple[str, ...] = ("plan", "message"),
) -> dict[str, list[tuple[int, int]]]:
    """Per (agent, purpose) series of (step, prompt_tokens).

    Matches Fig. 6's per-agent plan/message token traces.  When an agent
    makes several calls of one purpose in a step (retries, dialogue
    rounds), the largest prompt is kept — that is the context-growth
    signal.
    """
    best: dict[tuple[str, str, int], int] = defaultdict(int)
    for sample in result.token_samples:
        if sample.purpose not in purposes:
            continue
        key = (sample.agent, sample.purpose, sample.step)
        best[key] = max(best[key], sample.prompt_tokens)
    series: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for (agent, purpose, step), tokens in sorted(best.items()):
        series[f"{agent}:{purpose}"].append((step, tokens))
    return dict(series)


def total_tokens_per_step(result: EpisodeResult) -> list[tuple[int, int]]:
    """Total LLM prompt tokens consumed at each step (all calls, all agents)."""
    totals: dict[int, int] = defaultdict(int)
    for sample in result.token_samples:
        totals[sample.step] += sample.prompt_tokens
    return sorted(totals.items())


def growth_slope(series: list[tuple[int, int]]) -> float:
    """Least-squares slope of tokens over steps (tokens/step).

    Positive slope is the paper's Takeaway 5; used by tests and the
    Fig. 6 bench to assert growth without eyeballing plots.
    """
    if len(series) < 2:
        return 0.0
    n = len(series)
    mean_x = sum(step for step, _tokens in series) / n
    mean_y = sum(tokens for _step, tokens in series) / n
    numerator = sum(
        (step - mean_x) * (tokens - mean_y) for step, tokens in series
    )
    denominator = sum((step - mean_x) ** 2 for step, _tokens in series)
    if denominator == 0:
        return 0.0
    return numerator / denominator
