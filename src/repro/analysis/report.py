"""ASCII rendering of experiment results (tables and bar/series plots).

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable in a terminal and in
captured bench logs.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with per-column width fitting."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_bar(value: float, maximum: float, width: int = 30) -> str:
    """A single horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(1.0, value / maximum)))
    return "#" * filled + "." * (width - filled)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    unit: str = "",
    width: int = 30,
) -> str:
    """Labelled horizontal bar chart (one row per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    maximum = max(values, default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = format_bar(value, maximum, width=width)
        lines.append(f"{label.ljust(label_width)}  {bar}  {value:8.2f}{unit}")
    return "\n".join(lines)


def format_series(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    x_label: str = "x",
    precision: int = 1,
) -> str:
    """Numeric multi-series table (x in first column, one column per series)."""
    headers = [x_label] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row: list[object] = [x_value]
        for name in series:
            values = series[name]
            row.append(
                f"{values[index]:.{precision}f}" if index < len(values) else ""
            )
        rows.append(row)
    return format_table(headers, rows, title=title)


def checkmark(flag: bool) -> str:
    return "yes" if flag else "-"
