"""Regeneration of the paper's Table I and Table II from the registry."""

from __future__ import annotations

from repro.analysis.report import checkmark, format_table
from repro.workloads.base import TaxonomyEntry, Workload
from repro.workloads.registry import WORKLOAD_SUITE, full_taxonomy

_CATEGORY_LABELS = {
    "single-modular": "Single-Agent / Modularized",
    "single-end-to-end": "Single-Agent / End-to-End",
    "multi-centralized": "Multi-Agent / Centralized",
    "multi-decentralized": "Multi-Agent / Decentralized",
}

_MODULE_HEADERS = ["Sense", "Plan", "Comm.", "Mem.", "Refl.", "Exec."]


def taxonomy_rows(entries: list[TaxonomyEntry]) -> list[list[str]]:
    rows = []
    for entry in sorted(entries, key=lambda e: (e.category, e.name)):
        flags = entry.module_flags()
        rows.append(
            [
                _CATEGORY_LABELS[entry.category],
                entry.name,
                checkmark(flags["sensing"]),
                checkmark(flags["planning"]),
                checkmark(flags["communication"]),
                checkmark(flags["memory"]),
                checkmark(flags["reflection"]),
                checkmark(flags["execution"]),
                entry.embodied_type,
            ]
        )
    return rows


def render_table1() -> str:
    """Table I: paradigm categorization of embodied AI agent systems."""
    headers = ["Paradigm", "System"] + _MODULE_HEADERS + ["Embodied Type"]
    return format_table(
        headers,
        taxonomy_rows(full_taxonomy()),
        title="Table I: Embodied AI Agent Systems (paradigms and modules)",
    )


def suite_rows(suite: tuple[Workload, ...] = WORKLOAD_SUITE) -> list[list[str]]:
    rows = []
    for workload in suite:
        config = workload.config
        rows.append(
            [
                workload.name,
                config.sensing_model or "-",
                config.planning_model,
                config.communication_model or "-",
                f"cap={config.memory.capacity_steps}" if config.memory else "-",
                config.reflection_model or "-",
                "grounded" if config.execution_enabled else "-",
                config.env_name,
                config.paradigm,
                str(config.default_agents),
                workload.application,
            ]
        )
    return rows


def render_table2() -> str:
    """Table II: the benchmarked workload suite with module models."""
    headers = [
        "System",
        "Sensing",
        "Planning",
        "Comm.",
        "Memory",
        "Reflection",
        "Execution",
        "Env",
        "Paradigm",
        "Agents",
        "Application",
    ]
    return format_table(
        headers,
        suite_rows(),
        title="Table II: Embodied Agent Systems Workload Suite",
    )
