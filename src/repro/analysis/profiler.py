"""Latency profiling helpers over episode results.

Produces the per-module breakdowns (Fig. 2a) and aggregate latency views
(Fig. 2b) from :class:`~repro.core.metrics.EpisodeResult` /
:class:`~repro.core.metrics.AggregateResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clock import LLM_MODULES, MODULE_ORDER, ModuleName
from repro.core.metrics import AggregateResult


@dataclass(frozen=True)
class LatencyProfile:
    """Per-step module latency profile for one workload."""

    workload: str
    seconds_per_step: float
    module_share: dict[ModuleName, float]  # fractions summing to ~1
    total_minutes: float
    llm_fraction: float

    def share_of(self, module: ModuleName) -> float:
        return self.module_share.get(module, 0.0)


def profile_from_aggregate(result: AggregateResult) -> LatencyProfile:
    breakdown = result.module_breakdown()
    llm_fraction = sum(breakdown.get(module, 0.0) for module in LLM_MODULES)
    return LatencyProfile(
        workload=result.workload,
        seconds_per_step=result.mean_seconds_per_step,
        module_share=breakdown,
        total_minutes=result.mean_sim_minutes,
        llm_fraction=llm_fraction,
    )


def breakdown_rows(profiles: list[LatencyProfile]) -> list[list[str]]:
    """Rows of Fig. 2a's stacked-bar data: per-module percent of step time."""
    rows = []
    for profile in profiles:
        row = [profile.workload, f"{profile.seconds_per_step:.1f}"]
        row.extend(
            f"{100.0 * profile.share_of(module):.1f}%" for module in MODULE_ORDER
        )
        rows.append(row)
    return rows


def mean_llm_fraction(profiles: list[LatencyProfile]) -> float:
    """Suite-average share of latency in LLM modules (paper: 70.2 %)."""
    if not profiles:
        return 0.0
    return sum(profile.llm_fraction for profile in profiles) / len(profiles)
