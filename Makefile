# Single source of truth for the commands CI and humans run.
# All targets honour REPRO_TRIALS / REPRO_WORKERS from the environment.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench lint format suite

test:
	$(PYTHON) -m pytest -x -q

bench:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} REPRO_WORKERS=$${REPRO_WORKERS:-2} \
		$(PYTHON) -m pytest benchmarks/ -x -q

lint:
	ruff check .
	ruff format --check .

format:
	ruff check --fix .
	ruff format .

suite:
	$(PYTHON) -m repro.experiments.suite
