# Single source of truth for the commands CI and humans run.
# All targets honour REPRO_TRIALS / REPRO_WORKERS from the environment.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-hotpath bench-comm bench-planning bench-serving bench-fleet bench-all lint format suite docs-check resume-smoke fleet-drill

test:
	$(PYTHON) -m pytest -x -q

bench:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} REPRO_WORKERS=$${REPRO_WORKERS:-2} \
		$(PYTHON) -m pytest benchmarks/ -x -q

# Episode hot-path speedup (optimized vs reference), with the byte-identical
# equivalence assert and the >20%-regression gate against
# benchmarks/baselines/BENCH_hotpath.json.  Emits BENCH_hotpath.json.
bench-hotpath:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} \
		$(PYTHON) -m pytest benchmarks/bench_hotpath.py -x -q -s

# Communication pipeline speedup (step-batched delivery bus vs the seed
# per-delivery fan-out) on an all-dialogue grid, with the byte-identical
# equivalence assert and the >20%-regression gate against
# benchmarks/baselines/BENCH_comm.json.  Emits BENCH_comm.json.
bench-comm:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} \
		$(PYTHON) -m pytest benchmarks/bench_comm.py -x -q -s

# Planning-kernel microbenchmark (scoreboard scoring + prompt assembly,
# hot-path phase 4) on an episode-shaped synthetic driver, with the
# identical-outcome asserts and the >20%-regression gate against
# benchmarks/baselines/BENCH_planning.json.  Emits BENCH_planning.json.
bench-planning:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} \
		$(PYTHON) -m pytest benchmarks/bench_planning.py -x -q -s

# Batched-serving modeled-latency gate (inference scheduler, Rec. 1):
# outcome invariance plus the >20%-regression gate against
# benchmarks/baselines/BENCH_serving.json.  Emits BENCH_serving.json.
bench-serving:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} \
		$(PYTHON) -m pytest benchmarks/bench_serving.py -x -q -s

# Fleet dispatch speedup (one pipelined streaming wave vs per-cell
# barriered batches) on a straggler-shaped synthetic sweep, with the
# byte-identical equivalence assert and the >20%-regression gate against
# benchmarks/baselines/BENCH_fleet.json.  Emits BENCH_fleet.json.
bench-fleet:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} \
		$(PYTHON) -m pytest benchmarks/bench_fleet.py -x -q -s

# The five gated benchmarks CI runs, in one target.
bench-all: bench-hotpath bench-comm bench-planning bench-serving bench-fleet

# Crash/resume drill on the fleet ledger: kill a sweep mid-run, restart
# against the same ledger, require only the lost episodes to re-run and
# the aggregates to come back byte-identical.
resume-smoke:
	$(PYTHON) scripts/resume_smoke.py

# Multi-process kill-and-steal drill: N real shard processes against one
# ledger, one SIGKILLed mid-sweep; survivors must steal its leases, the
# restored aggregates must match a serial reference byte-for-byte, and
# `fleet status` must exit 0.  Run twice: plain, then with batched
# flushes + compaction engaged.
fleet-drill:
	$(PYTHON) scripts/fleet_drill.py --shards 3
	$(PYTHON) scripts/fleet_drill.py --shards 3 --flush 0.05 --compact 20

lint:
	ruff check .
	ruff format --check .

# Markdown link check over README.md/docs/, REPRO_* knob coverage (the
# serving guide must cover the serving knobs), and doctests — both on
# every module that carries them and on the >>> examples embedded in
# the markdown docs themselves.
docs-check:
	$(PYTHON) scripts/check_docs.py

format:
	ruff check --fix .
	ruff format .

suite:
	$(PYTHON) -m repro.experiments.suite
